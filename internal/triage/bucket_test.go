package triage

import (
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
)

func TestBucketStoreDedup(t *testing.T) {
	bs := NewBucketStore()
	o := mustOutcome(t, divSrc, nil)
	b1, fresh := bs.Add(o)
	if !fresh || b1 == nil {
		t.Fatal("first Add must open a bucket")
	}
	b2, fresh := bs.Add(mustOutcome(t, divSrc, nil))
	if fresh || b2 != b1 {
		t.Fatal("same fingerprint must land in the same bucket")
	}
	if bs.Len() != 1 || bs.Total() != 2 || b1.Count != 2 {
		t.Fatalf("Len=%d Total=%d Count=%d, want 1/2/2", bs.Len(), bs.Total(), b1.Count)
	}
	// Non-diverging outcomes are ignored.
	if b, fresh := bs.Add(mustOutcome(t, stableSrc, nil)); b != nil || fresh {
		t.Fatal("non-diverging outcome opened a bucket")
	}
	if got := bs.Keys(); len(got) != 1 || got[0] != b1.Key {
		t.Fatalf("Keys()=%v", got)
	}
}

// TestBucketCoarserThanSignature pins the dedup motivation: two
// findings whose raw triage signatures differ (different exit kinds)
// but whose partition and outcome classes agree merge into one
// bucket, with the signature diversity recorded on the bucket.
func TestBucketCoarserThanSignature(t *testing.T) {
	// Input byte selects the crash flavor: division by zero (SIGFPE)
	// or a double free (SIGABRT at O0/O1, silent corruption at O2+).
	// Either way the four unoptimized implementations crash with
	// empty stdout while the six optimized ones print one
	// poison-derived line each, so the partition and the
	// per-implementation classes coincide while the exit kinds — and
	// therefore the raw signatures — differ.
	const src = `
int main() {
    char buf[4];
    long n = read_input(buf, 4L);
    int d = (int)(n % 1L);
    if (n >= 1 && buf[0] == 'w') {
        char* p = (char*)malloc(8L);
        free(p);
        free(p);
        printf("w %d\n", 100 / d);
        return 0;
    }
    printf("d %d\n", 100 / d);
    return 0;
}
`
	suite, err := core.BuildSource(src, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oDiv := suite.Run(nil)
	oFree := suite.Run([]byte("w"))
	if !oDiv.Diverged || !oFree.Diverged {
		t.Fatalf("expected both flavors to diverge (div=%v free=%v)", oDiv.Diverged, oFree.Diverged)
	}
	if oDiv.Signature() == oFree.Signature() {
		t.Fatal("flavors landed on one signature; the coarsening regression is vacuous")
	}
	fpDiv, fpFree := Of(oDiv), Of(oFree)
	if !fpDiv.Equal(fpFree) {
		t.Fatalf("flavors split the implementations differently (%v vs %v)", fpDiv, fpFree)
	}
	bs := NewBucketStore()
	_, fresh1 := bs.Add(oDiv)
	b, fresh2 := bs.Add(oFree)
	if !fresh1 || fresh2 {
		t.Fatalf("want exactly one bucket, got fresh1=%v fresh2=%v", fresh1, fresh2)
	}
	if b.Signatures != 2 {
		t.Fatalf("bucket merged %d signatures, want 2", b.Signatures)
	}
}

func TestBucketStoreAbsorbRecount(t *testing.T) {
	oA := mustOutcome(t, divSrc, nil)
	oB := mustOutcome(t, `
int main() {
    int x;
    if (input_size() > 100L) { x = 1; }
    printf("%d\n", x);
    return 0;
}
`, nil)

	shard1, shard2 := NewBucketStore(), NewBucketStore()
	shard1.Add(oA)
	shard1.Add(oA)
	shard2.Add(oA)
	shard2.Add(oB)

	shared := NewBucketStore()
	fresh := shared.Absorb(shard1.Since(0))
	if len(fresh) != 1 {
		t.Fatalf("first absorb: %d fresh buckets, want 1", len(fresh))
	}
	fresh = shared.Absorb(shard2.Since(0))
	if len(fresh) != 1 {
		t.Fatalf("second absorb: %d fresh buckets, want 1 (A is known)", len(fresh))
	}
	if shared.Len() != 2 {
		t.Fatalf("shared.Len()=%d, want 2", shared.Len())
	}

	// Recount with authoritative per-shard sums, DiffStore-style.
	totals := map[uint64]int{}
	for _, s := range []*BucketStore{shard1, shard2} {
		for key, c := range s.Counts() {
			totals[key] += c
		}
	}
	shared.Recount(totals)
	if shared.Total() != 4 {
		t.Fatalf("Total=%d after recount, want 4", shared.Total())
	}

	// Since cursor clamps out of range.
	if got := shared.Since(99); len(got) != 0 {
		t.Fatalf("Since(99) returned %d buckets", len(got))
	}
	if got := shared.Since(-3); len(got) != 2 {
		t.Fatalf("Since(-3) returned %d buckets, want 2", len(got))
	}
}

func TestBucketReportAndTable(t *testing.T) {
	bs := NewBucketStore()
	b, _ := bs.Add(mustOutcome(t, divSrc, nil))
	names := make([]string, len(b.Fingerprint.Partition))
	for i, cfg := range compiler.DefaultSet() {
		names[i] = cfg.Name()
	}
	rep := b.Report(names)
	for _, want := range []string{"bucket ", "representative input", "reproducers:", "gcc -O0"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	table := bs.Table()
	if !strings.Contains(table, "bucket") || !strings.Contains(table, "stage") {
		t.Fatalf("table missing headers:\n%s", table)
	}
	if lines := strings.Count(strings.TrimSpace(table), "\n"); lines != 1 {
		t.Fatalf("table has %d rows, want 1:\n%s", lines, table)
	}
}
