package triage

// AST-level reduction passes. Every pass is an *edit enumerator*: a
// function that, given a freshly parsed program and an edit index k,
// applies the k-th edit of that pass in place and reports whether it
// existed. The reducer re-parses the current best source before every
// candidate, so edits mutate destructively and a rejected candidate
// costs nothing to undo. Edits never have to be semantically safe on
// their own — the printed candidate must re-parse, pass sema, and
// reproduce the divergence fingerprint before it is accepted, so an
// edit that breaks a use-def chain or a type is simply rejected.
//
// Termination does not rely on the enumeration being stable; it
// relies on every edit being *monotone*: each one strictly shrinks
// the program under the measure (AST node count, then total literal
// magnitude, then total string-literal length), so no sequence of
// accepted edits can cycle.

import (
	"compdiff/internal/minic/ast"
)

// pass is one family of candidate edits.
type pass struct {
	name  string
	apply func(p *ast.Program, k int) bool
}

// reductionPasses is the round-robin order a reduction round runs.
var reductionPasses = []pass{
	{"drop-toplevel", dropTopLevelEdit},
	{"drop-stmt", dropStmtEdit},
	{"collapse-stmt", collapseStmtEdit},
	{"inline-local", inlineLocalEdit},
	{"simplify-expr", simplifyExprEdit},
}

// dropTopLevelEdit deletes one top-level declaration: a non-main
// function, a global, or a struct.
func dropTopLevelEdit(p *ast.Program, k int) bool {
	idx := 0
	for i, f := range p.Funcs {
		if f.Name == "main" {
			continue
		}
		if idx == k {
			p.Funcs = append(p.Funcs[:i], p.Funcs[i+1:]...)
			return true
		}
		idx++
	}
	for i := range p.Globals {
		if idx == k {
			p.Globals = append(p.Globals[:i], p.Globals[i+1:]...)
			return true
		}
		idx++
	}
	for i := range p.Structs {
		if idx == k {
			p.Structs = append(p.Structs[:i], p.Structs[i+1:]...)
			return true
		}
		idx++
	}
	return false
}

// blocksOf collects every statement list in a function body, in
// source order.
func blocksOf(f *ast.FuncDecl) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Walk(f.Body, func(s ast.Stmt) bool {
		if b, ok := s.(*ast.BlockStmt); ok {
			out = append(out, b)
		}
		return true
	})
	return out
}

// dropStmtEdit deletes one statement from one block.
func dropStmtEdit(p *ast.Program, k int) bool {
	idx := 0
	for _, f := range p.Funcs {
		for _, b := range blocksOf(f) {
			for i := range b.Stmts {
				if idx == k {
					b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
					return true
				}
				idx++
			}
		}
	}
	return false
}

// collapseStmtEdit replaces one compound statement with one of its
// branches: if → then / else, while/for → body. The condition (and
// any init/post) disappears with the wrapper.
func collapseStmtEdit(p *ast.Program, k int) bool {
	idx := 0
	for _, f := range p.Funcs {
		for _, b := range blocksOf(f) {
			for i, s := range b.Stmts {
				var variants []ast.Stmt
				switch s := s.(type) {
				case *ast.IfStmt:
					variants = append(variants, s.Then)
					if s.Else != nil {
						variants = append(variants, s.Else)
					}
				case *ast.WhileStmt:
					variants = append(variants, s.Body)
				case *ast.ForStmt:
					variants = append(variants, s.Body)
				}
				if k < idx+len(variants) {
					// Clone on accept: the surviving branch must not
					// alias the wrapper's children (see exprVariants).
					b.Stmts[i] = ast.CloneStmt(variants[k-idx])
					return true
				}
				idx += len(variants)
			}
		}
	}
	return false
}

// useInfo summarizes how a name is used inside a function body.
type useInfo struct {
	uses   int
	unsafe bool       // written, address-taken, or inc/dec'd
	only   *ast.Ident // the single use when uses == 1
}

// usesOf counts reads of name in body and flags uses that make
// inlining unsound (writes, address-taking, increment/decrement).
// Name-based matching over-counts shadowed locals; that only makes
// the pass more conservative.
func usesOf(body ast.Stmt, name string) useInfo {
	var info useInfo
	var unsafeRoots func(e ast.Expr)
	unsafeRoots = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if e.Name == name {
				info.unsafe = true
			}
		case *ast.Index:
			unsafeRoots(e.X)
		case *ast.Member:
			unsafeRoots(e.X)
		case *ast.Unary:
			if e.Op == ast.Deref {
				unsafeRoots(e.X)
			}
		case *ast.CastExpr:
			unsafeRoots(e.X)
		}
	}
	ast.WalkExprs(body, func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if e.Name == name {
				info.uses++
				info.only = e
			}
		case *ast.Assign:
			unsafeRoots(e.LHS)
		case *ast.Unary:
			switch e.Op {
			case ast.AddrOf, ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
				unsafeRoots(e.X)
			}
		}
	})
	return info
}

// inlineLocalEdit substitutes a single-use, never-written local's
// initializer for its one read and deletes the declaration.
func inlineLocalEdit(p *ast.Program, k int) bool {
	idx := 0
	for _, f := range p.Funcs {
		for _, b := range blocksOf(f) {
			for i, s := range b.Stmts {
				ds, ok := s.(*ast.DeclStmt)
				if !ok {
					continue
				}
				for di, d := range ds.Decls {
					if d.Init == nil || d.Storage != ast.Auto {
						continue
					}
					info := usesOf(f.Body, d.Name)
					if info.unsafe || info.uses != 1 {
						continue
					}
					if idx != k {
						idx++
						continue
					}
					// Replace the read with the initializer, then drop
					// the declaration (and its DeclStmt if now empty).
					// The substituted initializer is a clone, never the
					// declaration's own node (see exprVariants).
					target, repl := info.only, ast.CloneExpr(d.Init)
					for _, fn := range p.Funcs {
						mapStmtExprs(fn.Body, func(e ast.Expr) ast.Expr {
							if e == ast.Expr(target) {
								return repl
							}
							return e
						})
					}
					ds.Decls = append(ds.Decls[:di], ds.Decls[di+1:]...)
					if len(ds.Decls) == 0 {
						b.Stmts = append(b.Stmts[:i], b.Stmts[i+1:]...)
					}
					return true
				}
			}
		}
	}
	return false
}

// exprVariants lists the monotone simplifications of one expression
// node: replace an operator node by one operand, strip a cast, or
// shrink a literal toward zero / the empty string.
//
// Every variant is a deep clone, never a child pointer of e. Under
// Reduce's reparse-per-candidate discipline aliasing was harmless (a
// rejected candidate's tree is thrown away), but these passes are also
// run inverted and reused as in-place population mutators by
// internal/evolve, where splicing e.X into an offspring while the
// parent genome still holds e would let one mutation reach into its
// siblings. Cloning on accept keeps every produced tree node-disjoint
// from its source.
func exprVariants(e ast.Expr) []ast.Expr {
	switch e := e.(type) {
	case *ast.Binary:
		return []ast.Expr{ast.CloneExpr(e.X), ast.CloneExpr(e.Y)}
	case *ast.Cond:
		return []ast.Expr{ast.CloneExpr(e.X), ast.CloneExpr(e.Y)}
	case *ast.Unary:
		switch e.Op {
		case ast.Neg, ast.LogicalNot, ast.BitNot:
			return []ast.Expr{ast.CloneExpr(e.X)}
		}
	case *ast.CastExpr:
		return []ast.Expr{ast.CloneExpr(e.X)}
	case *ast.IntLit:
		if e.Value != 0 && e.Value != 1 {
			zero := &ast.IntLit{Value: 0, LitPos: e.LitPos}
			half := &ast.IntLit{Value: e.Value / 2, LitPos: e.LitPos}
			return []ast.Expr{zero, half}
		}
	case *ast.StrLit:
		if len(e.Value) > 0 {
			empty := &ast.StrLit{Value: "", LitPos: e.LitPos}
			half := &ast.StrLit{Value: e.Value[:len(e.Value)/2], LitPos: e.LitPos}
			return []ast.Expr{empty, half}
		}
	}
	return nil
}

// simplifyExprEdit applies the k-th expression simplification in the
// program: expression nodes are visited in pre-order across all
// function bodies and global initializers, and each node contributes
// its exprVariants.
func simplifyExprEdit(p *ast.Program, k int) bool {
	idx := 0
	applied := false
	visit := func(e ast.Expr) ast.Expr {
		if applied {
			return e
		}
		variants := exprVariants(e)
		if k < idx+len(variants) {
			applied = true
			return variants[k-idx]
		}
		idx += len(variants)
		return e
	}
	for _, g := range p.Globals {
		if g.Init != nil {
			g.Init = mapExpr(g.Init, visit)
			if applied {
				return true
			}
		}
	}
	for _, f := range p.Funcs {
		mapStmtExprs(f.Body, visit)
		if applied {
			return true
		}
	}
	return false
}

// mapStmtExprs rewrites every expression held by the statement tree s
// through f (pre-order; children of a replaced node are not visited).
func mapStmtExprs(s ast.Stmt, f func(ast.Expr) ast.Expr) {
	ast.Walk(s, func(st ast.Stmt) bool {
		switch st := st.(type) {
		case *ast.DeclStmt:
			for _, d := range st.Decls {
				if d.Init != nil {
					d.Init = mapExpr(d.Init, f)
				}
			}
		case *ast.ExprStmt:
			st.X = mapExpr(st.X, f)
		case *ast.IfStmt:
			st.Cond = mapExpr(st.Cond, f)
		case *ast.WhileStmt:
			st.Cond = mapExpr(st.Cond, f)
		case *ast.ForStmt:
			if st.Cond != nil {
				st.Cond = mapExpr(st.Cond, f)
			}
			if st.Post != nil {
				st.Post = mapExpr(st.Post, f)
			}
		case *ast.ReturnStmt:
			if st.Value != nil {
				st.Value = mapExpr(st.Value, f)
			}
		}
		return true
	})
}

// mapExpr applies f to e; if f returns e unchanged, recurses into its
// children fields.
func mapExpr(e ast.Expr, f func(ast.Expr) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if r := f(e); r != e {
		return r
	}
	switch e := e.(type) {
	case *ast.Unary:
		e.X = mapExpr(e.X, f)
	case *ast.Binary:
		e.X = mapExpr(e.X, f)
		e.Y = mapExpr(e.Y, f)
	case *ast.Assign:
		e.LHS = mapExpr(e.LHS, f)
		e.RHS = mapExpr(e.RHS, f)
	case *ast.Cond:
		e.C = mapExpr(e.C, f)
		e.X = mapExpr(e.X, f)
		e.Y = mapExpr(e.Y, f)
	case *ast.Call:
		for i := range e.Args {
			e.Args[i] = mapExpr(e.Args[i], f)
		}
	case *ast.Index:
		e.X = mapExpr(e.X, f)
		e.Idx = mapExpr(e.Idx, f)
	case *ast.Member:
		e.X = mapExpr(e.X, f)
	case *ast.CastExpr:
		e.X = mapExpr(e.X, f)
	}
	return e
}
