package triage

import (
	"strings"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// The reduction corpus: one bloated finding per UB class. Each program
// embeds a small divergence-triggering core inside removable filler —
// helper functions, globals, dead locals, redundant control flow — and
// names every filler entity with a "pad" marker so the tests can assert
// the reducer actually deleted it rather than merely shrinking bytes.
var reduceCases = []struct {
	name  string
	src   string
	input []byte
	// gone are substrings that must not survive reduction.
	gone []string
	// kept are substrings the minimal form must still contain (the
	// construct that *is* the bug).
	kept []string
	// minShrink is the required source-byte reduction fraction.
	minShrink float64
}{
	{
		name: "oob-read",
		src: `
int pad_mix(int a, int b) {
    int r = a * 31 + b;
    return r ^ (a - b);
}
int pad_unused_global = 1234;
char* pad_banner = "out of bounds corpus entry";
int main() {
    int pad_before = pad_mix(3, 4);
    int a[4];
    int i = 0;
    while (i < 4) { a[i] = i * 3; i = i + 1; }
    int pad_after = pad_before + 10;
    printf("%d\n", a[4 + (int)input_size()]);
    if (pad_after > 100) { printf("pad unreachable\n"); }
    return 0;
}
`,
		// The frame-padding locals (pad_before and the pad_mix call
		// feeding it) survive: an OOB stack read is layout-sensitive,
		// so deleting a local moves the slot a[4] lands on and the
		// partition drifts. Everything layout-neutral must go.
		gone:      []string{"pad_unused_global", "pad_banner", "pad_after", "while"},
		kept:      []string{"a[4]", "printf"},
		minShrink: 0.5,
	},
	{
		name: "signed-overflow",
		src: `
long pad_sum3(long a, long b, long c) {
    return a + b + c;
}
int pad_flag = 0;
int main() {
    long pad_acc = pad_sum3(1L, 2L, 3L);
    int x = 2147483647;
    int n = (int)input_size() + 1;
    if (n < 0) { return 1; }
    if (pad_acc > 1000L) { pad_flag = 1; }
    if (x + n < x) { printf("wrapped\n"); return 2; }
    printf("ok %d\n", x + n);
    return 0;
}
`,
		gone:      []string{"pad_sum3", "pad_acc", "pad_flag"},
		kept:      []string{"< x"},
		minShrink: 0.45,
	},
	{
		name: "uninit-read",
		src: `
int pad_helper(int v) {
    int w = v + 100;
    return w * 2;
}
char* pad_tag = "uninitialized read";
int main() {
    int pad_a = pad_helper(7);
    int pad_b = pad_a - 3;
    int x;
    if (input_size() > 100L) { x = 1; }
    printf("%d\n", x);
    if (pad_b == -999) { printf("pad never\n"); }
    return 0;
}
`,
		// The minimal form is startlingly small: dropping main's
		// return statement makes the exit status itself the
		// uninitialized read, with the same per-implementation
		// fill-personality partition as the printed local. That is
		// signature-stability working as intended — the reduced
		// program exhibits the same disagreement shape, not the same
		// checksums.
		gone:      []string{"pad_helper", "pad_tag", "pad_a", "pad_b", "printf"},
		kept:      nil,
		minShrink: 0.85,
	},
	{
		name: "use-after-free",
		src: `
int pad_id(int x) { return x; }
long pad_counter = 0L;
int main() {
    pad_counter = pad_counter + 1L;
    int* p = (int*)malloc(16L);
    *p = 12345;
    int pad_copy = pad_id(*p);
    free(p);
    int* q = (int*)malloc(16L);
    *q = 999;
    printf("%d %d\n", *p, *q);
    if (pad_copy < 0) { printf("pad impossible\n"); }
    return 0;
}
`,
		gone:      []string{"pad_id", "pad_counter", "pad_copy"},
		kept:      []string{"free(p)"},
		minShrink: 0.4,
	},
}

func TestReduceUBClasses(t *testing.T) {
	for _, tc := range reduceCases {
		t.Run(tc.name, func(t *testing.T) {
			red, err := Reduce(tc.src, tc.input, ReduceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if red.SuiteRuns > DefaultBudget {
				t.Fatalf("spent %d suite runs, budget %d", red.SuiteRuns, DefaultBudget)
			}
			if got := red.SourceShrink(); got < tc.minShrink {
				t.Errorf("shrink %.0f%% < required %.0f%%\nreduced:\n%s",
					got*100, tc.minShrink*100, red.Source)
			}
			for _, s := range tc.gone {
				if strings.Contains(red.Source, s) {
					t.Errorf("filler %q survived reduction:\n%s", s, red.Source)
				}
			}
			for _, s := range tc.kept {
				if !strings.Contains(red.Source, s) {
					t.Errorf("bug construct %q reduced away:\n%s", s, red.Source)
				}
			}
			assertReproduces(t, red)
		})
	}
}

// assertReproduces re-validates the reducer's contract from scratch:
// the minimized source parses, passes sema, and its suite run diverges
// with exactly the reported fingerprint.
func assertReproduces(t *testing.T, red *Reduction) {
	t.Helper()
	prog, err := parser.Parse(red.Source)
	if err != nil {
		t.Fatalf("reduced source does not parse: %v", err)
	}
	if _, err := sema.Check(prog); err != nil {
		t.Fatalf("reduced source fails sema: %v", err)
	}
	suite, err := core.BuildSource(red.Source, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := suite.Run(red.Input)
	if !o.Diverged {
		t.Fatal("reduced finding no longer diverges")
	}
	if fp := Of(o); !fp.Equal(red.Fingerprint) {
		t.Fatalf("fingerprint drifted: reduced %v, reported %v", fp, red.Fingerprint)
	}
}

func TestReduceInputDdmin(t *testing.T) {
	// Divergence requires the first input byte to be 'X' (ASCII 88):
	// the divisor reads it directly, so neither AST reduction nor
	// ddmin can make the divergence input-independent — an empty
	// input would divide by uninitialized garbage and change the
	// partition. The trailing ballast is what ddmin must strip.
	src := `
int main() {
    char buf[32];
    long n = read_input(buf, 32L);
    if (n < 1L) { printf("empty\n"); return 0; }
    printf("%d\n", 100 / (buf[0] - 88));
    return 0;
}
`
	input := []byte("Xbbbbbbbbbbbbbbbb")
	red, err := Reduce(src, input, ReduceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(red.Input) != "X" {
		t.Fatalf("ddmin left input %q, want %q", red.Input, "X")
	}
	assertReproduces(t, red)
}

func TestReduceBudgetBound(t *testing.T) {
	const budget = 7
	red, err := Reduce(reduceCases[0].src, nil, ReduceOptions{MaxSuiteRuns: budget})
	if err != nil {
		t.Fatal(err)
	}
	if red.SuiteRuns > budget {
		t.Fatalf("spent %d suite runs, budget %d", red.SuiteRuns, budget)
	}
	// Even a starved reduction must hand back a valid reproducer.
	assertReproduces(t, red)
}

func TestReduceRejectsStableFinding(t *testing.T) {
	if _, err := Reduce(stableSrc, nil, ReduceOptions{}); err != ErrNoDivergence {
		t.Fatalf("err = %v, want ErrNoDivergence", err)
	}
}

func TestReduceRejectsBrokenSource(t *testing.T) {
	if _, err := Reduce("int main( {", nil, ReduceOptions{}); err == nil {
		t.Fatal("expected a parse error")
	}
}

// TestReduceDeterministicAcrossParallelism pins that the reduction
// result — source, input, fingerprint, and even the budget spent — is
// identical whether candidate suites execute sequentially or on four
// workers. Divergence checksums are deterministic per implementation,
// so parallelism must only change wall-clock.
func TestReduceDeterministicAcrossParallelism(t *testing.T) {
	tc := reduceCases[1]
	seq, err := Reduce(tc.src, tc.input, ReduceOptions{Suite: core.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Reduce(tc.src, tc.input, ReduceOptions{Suite: core.Options{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Source != par.Source || string(seq.Input) != string(par.Input) {
		t.Fatalf("parallelism changed the reduction:\nseq:\n%s\npar:\n%s", seq.Source, par.Source)
	}
	if !seq.Fingerprint.Equal(par.Fingerprint) || seq.SuiteRuns != par.SuiteRuns {
		t.Fatalf("parallelism changed fingerprint or cost: %d vs %d runs", seq.SuiteRuns, par.SuiteRuns)
	}
}
