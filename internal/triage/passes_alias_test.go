package triage

import (
	"testing"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/parser"
)

// allNodes collects the identity of every statement and expression
// node in a program.
func allNodes(p *ast.Program) map[ast.Node]bool {
	seen := map[ast.Node]bool{}
	for _, g := range p.Globals {
		if g.Init != nil {
			seen[g.Init] = true
		}
	}
	for _, f := range p.Funcs {
		ast.Walk(f.Body, func(s ast.Stmt) bool {
			seen[s] = true
			return true
		})
		ast.WalkExprs(f.Body, func(e ast.Expr) {
			seen[e] = true
		})
	}
	return seen
}

// TestSimplifyExprClonesOnAccept pins the aliasing fix directly: when
// simplify-expr replaces `a + b` by its left operand, the node spliced
// into the tree must be a clone of `a`, not the Binary's own child
// pointer — a caller holding the enumerated node must not be able to
// reach the accepted tree through it.
func TestSimplifyExprClonesOnAccept(t *testing.T) {
	p := parser.MustParse(`int main() { int a = 0; int b = 1; return a + b; }`)
	ret := p.Funcs[0].Body.Stmts[2].(*ast.ReturnStmt)
	bin := ret.Value.(*ast.Binary)
	origX := bin.X

	if !simplifyExprEdit(p, 0) {
		t.Fatal("edit 0 (binary -> left operand) not found")
	}
	id, ok := ret.Value.(*ast.Ident)
	if !ok || id.Name != "a" {
		t.Fatalf("return value after edit = %T, want Ident a", ret.Value)
	}
	if ast.Expr(id) == origX {
		t.Fatal("accepted variant is the source tree's own child pointer; want a clone")
	}
}

// TestCollapseStmtClonesOnAccept does the same for collapse-stmt: the
// surviving branch installed in the block must not be the IfStmt's own
// Then pointer.
func TestCollapseStmtClonesOnAccept(t *testing.T) {
	p := parser.MustParse(`int main() { if (1) { return 2; } return 0; }`)
	ifs := p.Funcs[0].Body.Stmts[0].(*ast.IfStmt)
	origThen := ifs.Then

	if !collapseStmtEdit(p, 0) {
		t.Fatal("edit 0 (if -> then) not found")
	}
	if p.Funcs[0].Body.Stmts[0] == origThen {
		t.Fatal("accepted branch is the wrapper's own child pointer; want a clone")
	}
	if got := ast.Print(p); got != ast.Print(parser.MustParse(`int main() { { return 2; } return 0; }`)) {
		t.Fatalf("collapsed program prints unexpectedly:\n%s", got)
	}
}

// TestInlineLocalClonesOnAccept: the initializer substituted for the
// single read must be a clone of the declaration's Init, not the node
// itself.
func TestInlineLocalClonesOnAccept(t *testing.T) {
	p := parser.MustParse(`int main() { int a = (1 + 0); return a; }`)
	decl := p.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	origInit := decl.Decls[0].Init

	if !inlineLocalEdit(p, 0) {
		t.Fatal("edit 0 (inline a) not found")
	}
	ret := p.Funcs[0].Body.Stmts[0].(*ast.ReturnStmt)
	if ret.Value == origInit {
		t.Fatal("inlined initializer is the declaration's own node; want a clone")
	}
}

// TestOffspringShareNoNodes is the population-mutator scenario from
// the evolve engine: two offspring derived from one parent (clone,
// then one in-place pass edit each) must share no AST node with each
// other or with the parent, so mutating one can never corrupt another
// genome.
func TestOffspringShareNoNodes(t *testing.T) {
	parent := parser.MustParse(`
int main() {
  int a = 0;
  int b = 1;
  if (a < b) { a = a + 1; }
  while (b > 0) { b = b - 1; }
  return a + b;
}`)
	offA := ast.CloneProgram(parent)
	offB := ast.CloneProgram(parent)
	if !simplifyExprEdit(offA, 0) {
		t.Fatal("offspring A edit not found")
	}
	if !collapseStmtEdit(offB, 0) {
		t.Fatal("offspring B edit not found")
	}

	pn, an, bn := allNodes(parent), allNodes(offA), allNodes(offB)
	for n := range an {
		if pn[n] {
			t.Fatalf("offspring A shares node %T with the parent", n)
		}
		if bn[n] {
			t.Fatalf("offspring A shares node %T with offspring B", n)
		}
	}
	for n := range bn {
		if pn[n] {
			t.Fatalf("offspring B shares node %T with the parent", n)
		}
	}
}
