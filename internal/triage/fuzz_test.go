package triage

// Native `go test -fuzz` target for the reducer: arbitrary input
// bytes drive a host program with several input-gated unstable
// constructs, and on every input whose execution diverges, Reduce's
// full contract is asserted from scratch — the minimized program
// parses, passes sema, is no larger than the original, and reproduces
// the original divergence fingerprint exactly. Run as a smoke test
// via `make fuzz-smoke`, or at length with
// `go test -fuzz=FuzzReduce ./internal/triage/`.

import (
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// fuzzHostSrc gates one divergence flavor per first-byte value, so the
// fuzzer steers between stable executions (skipped) and several
// distinct fingerprints (each of which must be preserved).
const fuzzHostSrc = `
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 1L) { printf("none\n"); return 0; }
    int b = (int)buf[0];
    if (b == 88) { printf("X %d\n", 100 / (b - 88)); }
    if (b == 70) {
        char* p = (char*)malloc(8L);
        free(p);
        free(p);
    }
    if (b == 85) {
        int x;
        printf("U %d\n", x);
    }
    printf("end %d %ld\n", b, n);
    return 0;
}
`

// compileHostSrc is the compile-stage host: optimizing gcc rejects
// the constant division outright, everyone else accepts with a
// warning, so the program itself is a compile-divergence finding.
const compileHostSrc = `
int pad_helper(int v) { return v * 3 + 1; }
int main() {
    int pad = pad_helper(5);
    printf("pad %d\n", pad);
    int d = 1 / 0;
    return d;
}
`

func FuzzReduce(f *testing.F) {
	suite, err := core.BuildSource(fuzzHostSrc, compiler.DefaultSet(), core.Options{})
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte("X"))
	f.Add([]byte("Fpadding"))
	f.Add([]byte("Uaa"))
	f.Add([]byte("zz"))
	f.Add([]byte{})
	f.Add([]byte("K"))
	f.Add([]byte("Kwith trailing input bytes"))

	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 32 {
			input = input[:32]
		}
		if len(input) > 0 && input[0] == 'K' {
			// Compile-stage branch: the host diverges at compile time, so
			// Reduce must preserve the compile fingerprint without ever
			// running the VM, and the input — whatever the fuzzer put
			// after the gate byte — must drop out as irrelevant.
			fuzzCompileReduce(t, input)
			return
		}
		o := suite.Run(input)
		if !o.Diverged {
			t.Skip("stable input")
		}
		orig := Of(o)

		red, err := Reduce(fuzzHostSrc, input, ReduceOptions{MaxSuiteRuns: 120})
		if err != nil {
			t.Fatal(err)
		}
		if red.SuiteRuns > 120 {
			t.Fatalf("budget overrun: %d suite runs", red.SuiteRuns)
		}
		if len(red.Source) > len(fuzzHostSrc) || len(red.Input) > len(input) {
			t.Fatalf("reduction grew the finding: %d/%d source bytes, %d/%d input bytes",
				len(red.Source), len(fuzzHostSrc), len(red.Input), len(input))
		}
		if !red.Fingerprint.Equal(orig) {
			t.Fatalf("reported fingerprint drifted: %v vs original %v", red.Fingerprint, orig)
		}

		// Re-validate the output from scratch, trusting nothing the
		// reducer cached: parse, check, rebuild, re-run, re-fingerprint.
		prog, err := parser.Parse(red.Source)
		if err != nil {
			t.Fatalf("reduced source does not parse: %v\n%s", err, red.Source)
		}
		if _, err := sema.Check(prog); err != nil {
			t.Fatalf("reduced source fails sema: %v\n%s", err, red.Source)
		}
		rsuite, err := core.BuildSource(red.Source, compiler.DefaultSet(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ro := rsuite.Run(red.Input)
		if !ro.Diverged {
			t.Fatalf("reduced finding no longer diverges:\n%s", red.Source)
		}
		if fp := Of(ro); !fp.Equal(orig) {
			t.Fatalf("reduced fingerprint %v != original %v\n%s", fp, orig, red.Source)
		}
	})
}

// fuzzCompileReduce asserts Reduce's contract on a compile-stage
// finding: same fingerprint, no growth, no retained input, and the
// output re-validates from scratch.
func fuzzCompileReduce(t *testing.T, input []byte) {
	_, co, err := core.BuildSourceDifferential(compileHostSrc, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig, ok := OfCompile(co)
	if !ok {
		t.Fatal("compile host is not a finding")
	}
	if orig.Kind == KindRuntime {
		t.Fatalf("compile host fingerprints as runtime: %s", orig)
	}

	red, err := Reduce(compileHostSrc, input, ReduceOptions{MaxSuiteRuns: 120})
	if err != nil {
		t.Fatal(err)
	}
	if red.SuiteRuns > 120 {
		t.Fatalf("budget overrun: %d suite runs", red.SuiteRuns)
	}
	if len(red.Source) > len(compileHostSrc) {
		t.Fatalf("reduction grew the finding: %d/%d source bytes", len(red.Source), len(compileHostSrc))
	}
	if len(red.Input) != 0 {
		t.Fatalf("compile-stage reduction kept input %q", red.Input)
	}
	if !red.Fingerprint.Equal(orig) {
		t.Fatalf("reported fingerprint drifted: %v vs original %v", red.Fingerprint, orig)
	}

	// Re-validate from scratch, trusting nothing the reducer cached.
	rsuite, rco, err := core.BuildSourceDifferential(red.Source, compiler.DefaultSet(), core.Options{})
	if err != nil {
		t.Fatalf("reduced source does not build: %v\n%s", err, red.Source)
	}
	if rsuite != nil {
		t.Fatalf("reduced source compiles clean everywhere:\n%s", red.Source)
	}
	if fp, ok := OfCompile(rco); !ok || !fp.Equal(orig) {
		t.Fatalf("reduced fingerprint %v != original %v\n%s", fp, orig, red.Source)
	}
}
