package triage

// Unit tests for the compile-stage half of the triage layer: the
// OfCompile finding predicate, the Kind/Detail extension of the
// fingerprint key, and the BucketStore's compile-bucket handling
// (AddCompile, KindCounts, checkpoint round-trip, reports). These work
// on synthetic CompileOutcome records so every branch — including ones
// the real compiler set never produces — is reachable.

import (
	"strings"
	"testing"

	"compdiff/internal/core"
)

// accept/reject/ice build one synthetic per-implementation record each.
func accept(name string) core.ImplCompile {
	return core.ImplCompile{Name: name, Status: core.StatusAccept}
}

func reject(name string, diags ...string) core.ImplCompile {
	return core.ImplCompile{
		Name:   name,
		Status: core.StatusReject,
		Error:  "compile [" + name + "]: rejected",
		Diags:  diags,
	}
}

func ice(name, text string) core.ImplCompile {
	return core.ImplCompile{
		Name:   name,
		Status: core.StatusICE,
		Error:  "compile [" + name + "]: internal compiler error",
		ICE:    text,
	}
}

func outcome(impls ...core.ImplCompile) *core.CompileOutcome {
	return &core.CompileOutcome{Impls: impls}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindRuntime:           "runtime",
		KindCompileDivergence: "compile-divergence",
		KindICE:               "ice",
		KindDiagMismatch:      "diag-mismatch",
		Kind(99):              "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestOfCompileNonFindings(t *testing.T) {
	// Universal acceptance: the runtime oracle's territory.
	if _, ok := OfCompile(outcome(accept("a"), accept("b"))); ok {
		t.Error("all-accept outcome fingerprinted as a finding")
	}
	// Uniform rejection with the same diagnostic: a plain invalid
	// program, even when line numbers drift between implementations.
	if _, ok := OfCompile(outcome(
		reject("a", "<source>:3: error: division by zero"),
		reject("b", "<source>:7: error: division by zero"),
	)); ok {
		t.Error("uniformly-rejected program fingerprinted as a finding")
	}
	// Uniform rejection with no rendered diagnostics falls back to the
	// error text; the per-implementation prefix must not split it.
	if _, ok := OfCompile(outcome(reject("gcc -O0"), reject("clang -O2"))); ok {
		t.Error("prefix-only error difference fingerprinted as a finding")
	}
}

func TestOfCompileClasses(t *testing.T) {
	div, ok := OfCompile(outcome(accept("a"), reject("b", "<source>:1: error: no")))
	if !ok || div.Kind != KindCompileDivergence {
		t.Fatalf("accept+reject => (%v, %v), want compile-divergence", div.Kind, ok)
	}
	if div.Stage != 1 || div.Partition[0] != 0 || div.Partition[1] != 1 {
		t.Errorf("divergence shape wrong: %s", div)
	}

	crash, ok := OfCompile(outcome(accept("a"), ice("b", "internal compiler error: in fold, at expr.cc:9")))
	if !ok || crash.Kind != KindICE {
		t.Fatalf("accept+ice => (%v, %v), want ice", crash.Kind, ok)
	}
	// ICE outranks the accept/reject split in classification.
	mixed, ok := OfCompile(outcome(accept("a"), reject("b", "e"), ice("c", "boom")))
	if !ok || mixed.Kind != KindICE {
		t.Fatalf("accept+reject+ice => (%v, %v), want ice", mixed.Kind, ok)
	}

	diag, ok := OfCompile(outcome(
		reject("a", "<source>:1: error: division by zero"),
		reject("b", "<source>:1: error: initializer element is not constant"),
	))
	if !ok || diag.Kind != KindDiagMismatch {
		t.Fatalf("split rejects => (%v, %v), want diag-mismatch", diag.Kind, ok)
	}

	// Same statuses, different ICE texts: one partition cell per
	// normalized crash, and distinct Details.
	two, ok := OfCompile(outcome(ice("a", "crash in fold"), ice("b", "crash in lower")))
	if !ok || two.Partition[1] != 1 {
		t.Fatalf("distinct ICE texts merged: %s ok=%v", two, ok)
	}
	one, ok := OfCompile(outcome(ice("a", "crash in fold at line 3"), ice("b", "crash in fold at line 88")))
	if !ok {
		t.Fatal("uniform ICE outcome must still be a finding")
	}
	if one.Partition[1] != 0 {
		t.Errorf("normalization-equivalent ICE texts split the partition: %s", one)
	}
	if one.Detail == two.Detail {
		t.Error("different crash sets share a Detail hash")
	}
}

func TestCompileKeyExtendsRuntimeKeyspace(t *testing.T) {
	runtime := Fingerprint{Partition: []uint8{0, 1}, Classes: []uint8{0, 0}, Stage: 1}
	compile := Fingerprint{Partition: []uint8{0, 1}, Classes: []uint8{0, 0}, Stage: 1,
		Kind: KindCompileDivergence, Detail: 7}
	if runtime.Key() == compile.Key() {
		t.Error("kind/detail tail did not change the bucket key")
	}
	other := compile
	other.Detail = 8
	if compile.Key() == other.Key() {
		t.Error("detail value did not change the bucket key")
	}
	if compile.Key() != compile.Key() {
		t.Error("key is not deterministic")
	}
	if runtime.Equal(compile) || !compile.Equal(compile) {
		t.Error("Equal ignores the kind/detail extension")
	}
}

func TestCompileFingerprintString(t *testing.T) {
	fp, ok := OfCompile(outcome(accept("a"), ice("b", "boom"), reject("c", "e")))
	if !ok {
		t.Fatal("mixed outcome must be a finding")
	}
	s := fp.String()
	for _, want := range []string{"ice ", "class[air]", "detail["} {
		if !strings.Contains(s, want) {
			t.Errorf("compile fingerprint %q missing %q", s, want)
		}
	}
	// Out-of-range class bytes render as '?' instead of panicking.
	weird := Fingerprint{Partition: []uint8{0}, Classes: []uint8{42}, Kind: KindICE}
	if !strings.Contains(weird.String(), "class[?]") {
		t.Errorf("out-of-range class not rendered as '?': %s", weird)
	}
}

func TestStripImplPrefix(t *testing.T) {
	if got := stripImplPrefix("compile [gcc -O2]: no main function"); got != "no main function" {
		t.Errorf("prefix not stripped: %q", got)
	}
	if got := stripImplPrefix("plain error"); got != "plain error" {
		t.Errorf("unprefixed text changed: %q", got)
	}
}

func TestAddCompileDedupAndKindCounts(t *testing.T) {
	bs := NewBucketStore()
	if b, _ := bs.AddCompile(nil); b != nil {
		t.Error("nil outcome produced a bucket")
	}
	if b, _ := bs.AddCompile(outcome(accept("a"), accept("b"))); b != nil {
		t.Error("non-finding outcome produced a bucket")
	}

	div := outcome(accept("a"), reject("b", "<source>:1: error: no"))
	b1, fresh := bs.AddCompile(div)
	if b1 == nil || !fresh {
		t.Fatal("first finding did not open a bucket")
	}
	// The same finding with a shifted line number is the same bucket
	// but a distinct raw signature.
	b2, fresh := bs.AddCompile(outcome(accept("a"), reject("b", "<source>:44: error: no")))
	if b2 != b1 || fresh {
		t.Fatalf("line-shifted finding opened a new bucket")
	}
	if b1.Count != 2 || b1.Signatures != 2 {
		t.Errorf("bucket counters = (%d inputs, %d signatures), want (2, 2)", b1.Count, b1.Signatures)
	}

	bs.AddCompile(outcome(accept("a"), ice("b", "boom")))
	bs.AddCompile(outcome(reject("a", "x"), reject("b", "y")))
	counts := bs.KindCounts()
	want := [NumKinds]int{KindCompileDivergence: 1, KindICE: 1, KindDiagMismatch: 1}
	if counts != want {
		t.Errorf("KindCounts = %v, want %v", counts, want)
	}
	if bs.Len() != 3 || bs.Total() != 4 {
		t.Errorf("store has %d buckets / %d total, want 3 / 4", bs.Len(), bs.Total())
	}
}

func TestCompileBucketCheckpointRoundTrip(t *testing.T) {
	bs := NewBucketStore()
	bs.AddCompile(outcome(accept("a"), ice("b", "internal compiler error: in fold")))
	bs.AddCompile(outcome(accept("a"), reject("b", "<source>:1: error: no")))
	bs.AddCompile(outcome(accept("a"), reject("b", "<source>:9: error: no")))

	snaps, total := bs.Export()
	if len(snaps) != 2 || total != 3 {
		t.Fatalf("Export => %d snapshots / %d total, want 2 / 3", len(snaps), total)
	}
	if snaps[0].Compile == nil || snaps[0].Outcome != nil {
		t.Error("compile bucket exported without its Compile record")
	}

	re := RestoreBucketStore(snaps, total)
	if re.Len() != 2 || re.Total() != 3 {
		t.Fatalf("restore => %d buckets / %d total, want 2 / 3", re.Len(), re.Total())
	}
	rs, rtotal := re.Export()
	if rtotal != total || len(rs) != len(snaps) {
		t.Fatal("second export changed shape")
	}
	for i := range snaps {
		if rs[i].Key != snaps[i].Key || rs[i].Count != snaps[i].Count ||
			len(rs[i].Signatures) != len(snaps[i].Signatures) {
			t.Errorf("snapshot %d drifted across restore: %+v vs %+v", i, rs[i], snaps[i])
		}
	}

	// A restored store keeps deduplicating into the same buckets.
	if _, fresh := re.AddCompile(outcome(accept("a"), reject("b", "<source>:77: error: no"))); fresh {
		t.Error("restored store opened a duplicate bucket")
	}
}

func TestCompileBucketReportAndTable(t *testing.T) {
	bs := NewBucketStore()
	b, _ := bs.AddCompile(outcome(
		accept("gcc -O0"),
		ice("gcc -O2", "internal compiler error: in simplify_expr, at expr.cc:4149"),
		reject("clang -O1", "<source>:3: error: division by zero"),
	))
	rep := b.Report([]string{"gcc -O0", "gcc -O2", "clang -O1"})
	for _, want := range []string{
		"[gcc -O0] accept",
		"[gcc -O2] ice",
		"internal compiler error: in simplify_expr",
		"[clang -O1] reject",
		"division by zero",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("compile report missing %q:\n%s", want, rep)
		}
	}
	if !strings.Contains(bs.Table(), "ice stage1") {
		t.Errorf("table does not show the compile fingerprint:\n%s", bs.Table())
	}
}
