package triage

import (
	"regexp"
	"sort"
	"strings"

	"compdiff/internal/hash"
)

// Crash and diagnostic normalization. ICE panic texts and compiler
// diagnostics carry incidental noise — internal source locations,
// frame addresses, recursion counters, the line the reducer just
// moved — that would make every reproducer its own bucket. Before
// fingerprinting, messages are normalized the way differential
// crash-triage tooling does: file paths, line numbers, hex addresses,
// and counters collapse to placeholders, whitespace is canonicalized,
// and only then is the text hashed. Two crashes are "the same bug"
// exactly when their normalized texts agree.

var (
	// Hex literals first: otherwise the digit rule would shred them.
	normHex = regexp.MustCompile(`0[xX][0-9a-fA-F]+`)
	// Slash paths (absolute or relative, any depth).
	normSlashPath = regexp.MustCompile(`(?:[A-Za-z0-9_.+-]*/)+[A-Za-z0-9_.+-]+`)
	// Bare source-file tokens like expr.cc or lower.go.
	normFile = regexp.MustCompile(`\b[A-Za-z0-9_+-]+\.(?:c|cc|cpp|cxx|h|hpp|go|py|rs|mc)\b`)
	// Remaining digit runs: line/column numbers, depths, counters.
	normNum = regexp.MustCompile(`[0-9]+`)
	normWS  = regexp.MustCompile(`\s+`)
)

// NormalizeMessage canonicalizes one diagnostic or panic message. The
// placeholders are deliberately digit-free so the later rules cannot
// shred them.
func NormalizeMessage(s string) string {
	s = normHex.ReplaceAllString(s, "<hex>")
	s = normSlashPath.ReplaceAllString(s, "<path>")
	s = normFile.ReplaceAllString(s, "<path>")
	s = normNum.ReplaceAllString(s, "<n>")
	s = normWS.ReplaceAllString(strings.TrimSpace(s), " ")
	return s
}

// CrashKey is the normalized fingerprint of one ICE panic text.
func CrashKey(panicText string) uint64 {
	return hash.Sum64([]byte(NormalizeMessage(panicText)), 0x1ce)
}

// DiagSetKey is the normalized fingerprint of a diagnostic *set*:
// messages are normalized, deduplicated, and sorted, so emission
// order and repeated sites do not affect identity.
func DiagSetKey(diags []string) uint64 {
	if len(diags) == 0 {
		return 0
	}
	norm := make([]string, 0, len(diags))
	seen := map[string]bool{}
	for _, d := range diags {
		n := NormalizeMessage(d)
		if !seen[n] {
			seen[n] = true
			norm = append(norm, n)
		}
	}
	sort.Strings(norm)
	return hash.Sum64([]byte(strings.Join(norm, "\n")), 0xd1a6)
}
