// Package analyzer implements the three static-analysis baselines the
// paper compares against on the Juliet suite (§4.1, Table 3):
// Coverity-, Cppcheck- and Infer-style checkers. Each is an honest
// static tool of a characteristic sophistication tier:
//
//   - cppcheck: syntactic, same-block pattern matching. Very few
//     false positives, but blind to anything requiring flow.
//   - infer: intraprocedural dataflow focused on memory and
//     nullability, deliberately path-insensitive — the source of its
//     strong null-deref recall *and* its high false-positive rate.
//   - coverity: the broadest checker set, flow-aware within a
//     function, with heuristics that trade precision for recall.
//
// Static tools report *potential* defects from source alone; the
// Juliet harness measures their detection and false-positive rates
// against ground truth, reproducing the paper's comparison.
package analyzer

import (
	"fmt"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/sema"
	"compdiff/internal/minic/token"
	"compdiff/internal/minic/types"
)

// Category classifies findings into the paper's Table 3 row groups.
type Category int

const (
	MemoryError    Category = iota // CWE-121..127, 415, 416, 590
	APIMisuse                      // CWE-475
	BadStructPtr                   // CWE-588
	BadCall                        // CWE-685
	GeneralUB                      // CWE-758
	IntegerError                   // CWE-190, 191, 680
	DivByZero                      // CWE-369
	NullDeref                      // CWE-476
	UninitMemory                   // CWE-457, 665
	PtrSubtraction                 // CWE-469
	NumCategories
)

var categoryNames = [...]string{
	"memory-error", "api-misuse", "bad-struct-ptr", "bad-call",
	"general-ub", "integer-error", "div-by-zero", "null-deref",
	"uninit-memory", "ptr-subtraction",
}

// String names the category.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Finding is one static-analysis report.
type Finding struct {
	Tool     string
	Category Category
	Pos      token.Pos
	Msg      string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s (%s)", f.Tool, f.Pos, f.Msg, f.Category)
}

// Tool is a static analyzer.
type Tool interface {
	Name() string
	Analyze(info *sema.Info) []Finding
}

// AllTools returns the three baselines.
func AllTools() []Tool {
	return []Tool{NewCoverity(), NewCppcheck(), NewInfer()}
}

// ---------------------------------------------------------------------------
// Shared per-function event stream
//
// The checkers consume a linearized view of each function: reads,
// writes, dereferences, frees, allocations, guards — each annotated
// with whether it sits under a condition. This is deliberately the
// kind of abstraction real lightweight analyzers use; its blind spots
// (interprocedural flow, path correlation) are the blind spots the
// paper measures.

type eventKind int

const (
	evAssign eventKind = iota
	evCondAssign
	evRead      // value of the symbol used
	evDeref     // *p, p[i], p->f
	evFree      // free(sym)
	evMallocTo  // sym = malloc(size); size in extra (bytes, -1 unknown)
	evCmpNull   // sym compared against 0
	evAddrTaken // &sym
	evIndex     // indexed access: extra = const index (-1 unknown), extra2 = elem size
	evDivisor   // sym used as divisor
	evGuardNonzero
	evCallArg    // sym passed to a function by value
	evAssignZero // sym assigned a literal zero (int or float)
)

type event struct {
	kind   eventKind
	sym    *ast.Symbol
	pos    token.Pos
	cond   bool  // under a condition or loop
	extra  int64 // kind-specific payload
	extra2 int64
}

// funcFacts is the analyzed view of one function.
type funcFacts struct {
	fn     *ast.FuncDecl
	events []event
	// arity-mismatched calls (CWE-685) and overlapping memcpys
	// (CWE-475) are recorded globally.
	arityCalls   []*ast.Call
	overlapCalls []*ast.Call
	// shift counts >= width with constant operands (CWE-758 family).
	badShifts []token.Pos
	// missing return: non-void function with a fall-off path.
	missingReturn bool
	// casts of narrow-object pointers to struct pointers (CWE-588).
	structCasts []token.Pos
	// locals declared without an initializer (scalar/pointer only).
	declNoInit map[*ast.Symbol]bool
	// memcpy calls whose length is sizeof(a pointer type) — the
	// classic "suspicious sizeof" lint.
	sizeofPtrCopies []token.Pos
	// *(p + K) accesses with constant K: visible to the dataflow tiers
	// (coverity, infer) but not to the syntactic tier.
	ptrSites []ptrSite
}

// ptrSite is a constant-offset pointer dereference *(p + K).
type ptrSite struct {
	sym  *ast.Symbol
	off  int64 // element offset
	elem int64 // element size in bytes
	pos  token.Pos
}

// analyzeFuncs builds facts for every function in the program.
func analyzeFuncs(info *sema.Info) []*funcFacts {
	var out []*funcFacts
	for _, fn := range info.Prog.Funcs {
		ff := &funcFacts{fn: fn, declNoInit: map[*ast.Symbol]bool{}}
		w := &eventWalker{ff: ff}
		w.stmt(fn.Body)
		if !fn.Result.IsVoid() && !terminatesStmt(fn.Body) {
			ff.missingReturn = true
		}
		out = append(out, ff)
	}
	return out
}

type eventWalker struct {
	ff   *funcFacts
	cond int
}

func (w *eventWalker) add(kind eventKind, sym *ast.Symbol, pos token.Pos, extra ...int64) {
	e := event{kind: kind, sym: sym, pos: pos, cond: w.cond > 0}
	if len(extra) > 0 {
		e.extra = extra[0]
	}
	if len(extra) > 1 {
		e.extra2 = extra[1]
	}
	w.ff.events = append(w.ff.events, e)
}

func (w *eventWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, c := range s.Stmts {
			w.stmt(c)
		}
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				w.expr(d.Init, false)
				if d.Sym != nil {
					w.recordAssign(d.Sym, d.NamePos, d.Init)
				}
			} else if d.Sym != nil && d.Sym.Kind == ast.SymLocal &&
				d.DeclType.Kind != types.Array && d.DeclType.Kind != types.Struct {
				w.ff.declNoInit[d.Sym] = true
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, false)
	case *ast.IfStmt:
		w.expr(s.Cond, false)
		w.cond++
		w.stmt(s.Then)
		w.stmt(s.Else)
		w.cond--
	case *ast.WhileStmt:
		w.expr(s.Cond, false)
		w.cond++
		w.stmt(s.Body)
		w.cond--
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond, false)
		}
		w.cond++
		if s.Post != nil {
			w.expr(s.Post, false)
		}
		w.stmt(s.Body)
		w.cond--
	case *ast.ReturnStmt:
		if s.Value != nil {
			w.expr(s.Value, false)
		}
	}
}

func (w *eventWalker) recordAssign(sym *ast.Symbol, pos token.Pos, rhs ast.Expr) {
	kind := evAssign
	if w.cond > 0 {
		kind = evCondAssign
	}
	w.add(kind, sym, pos)
	if rhs == nil {
		return
	}
	rhs = stripCasts(rhs)
	// Track p = malloc(N).
	if call, ok := rhs.(*ast.Call); ok && call.Fun.Name == "malloc" && len(call.Args) == 1 {
		size := int64(-1)
		if lit, ok := constIntOf(call.Args[0]); ok {
			size = lit
		}
		w.add(evMallocTo, sym, pos, size)
	}
	if lit, ok := rhs.(*ast.IntLit); ok && lit.Value == 0 {
		if sym.Type != nil && sym.Type.IsPtr() {
			w.add(evCmpNull, sym, pos, 1) // assigned NULL
		} else {
			w.add(evAssignZero, sym, pos)
		}
	}
	if lit, ok := rhs.(*ast.FloatLit); ok && lit.Value == 0 {
		w.add(evAssignZero, sym, pos)
	}
}

func constIntOf(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.CastExpr:
		return constIntOf(e.X)
	case *ast.SizeofExpr:
		return e.Of.Size(), true
	case *ast.Binary:
		if x, ok := constIntOf(e.X); ok {
			if y, ok := constIntOf(e.Y); ok {
				switch e.Op {
				case ast.Add:
					return x + y, true
				case ast.Sub:
					return x - y, true
				case ast.Mul:
					return x * y, true
				}
			}
		}
	}
	return 0, false
}

func identOf(e ast.Expr) *ast.Symbol {
	if id, ok := e.(*ast.Ident); ok {
		return id.Sym
	}
	return nil
}

func (w *eventWalker) expr(e ast.Expr, asLValue bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if e.Sym != nil && !asLValue {
			w.add(evRead, e.Sym, e.NamePos)
		}
	case *ast.Unary:
		switch e.Op {
		case ast.Deref:
			if sym := identOf(e.X); sym != nil {
				w.add(evDeref, sym, e.OpPos)
			}
			if bin, ok := e.X.(*ast.Binary); ok && bin.Op == ast.Add {
				if sym := identOf(bin.X); sym != nil {
					if k, ok := constIntOf(bin.Y); ok {
						elem := int64(1)
						if t := e.Type(); t != nil {
							elem = t.Size()
						}
						w.add(evDeref, sym, e.OpPos)
						w.ff.ptrSites = append(w.ff.ptrSites, ptrSite{sym: sym, off: k, elem: elem, pos: e.OpPos})
					}
				}
			}
			w.expr(e.X, false)
		case ast.AddrOf:
			if sym := identOf(e.X); sym != nil {
				w.add(evAddrTaken, sym, e.OpPos)
			} else {
				w.expr(e.X, true)
			}
		case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
			if sym := identOf(e.X); sym != nil {
				w.add(evRead, sym, e.OpPos)
				w.recordAssign(sym, e.OpPos, nil)
			} else {
				w.expr(e.X, false)
			}
		default:
			w.expr(e.X, false)
		}
	case *ast.Binary:
		w.binary(e)
	case *ast.Assign:
		if sym := identOf(e.LHS); sym != nil {
			w.expr(e.RHS, false)
			if e.Op != ast.PlainAssign {
				w.add(evRead, sym, e.OpPos)
			}
			w.recordAssign(sym, e.OpPos, e.RHS)
		} else {
			w.expr(e.LHS, true)
			w.expr(e.RHS, false)
		}
	case *ast.Cond:
		w.expr(e.C, false)
		w.cond++
		w.expr(e.X, false)
		w.expr(e.Y, false)
		w.cond--
	case *ast.Call:
		w.call(e)
	case *ast.Index:
		if sym := identOf(e.X); sym != nil {
			w.add(evDeref, sym, e.LBracket)
			ci := int64(-1)
			if v, ok := constIntOf(e.Idx); ok {
				ci = v
			}
			elem := int64(1)
			if t := e.Type(); t != nil {
				elem = t.Size()
			}
			w.add(evIndex, sym, e.LBracket, ci, elem)
		} else {
			w.expr(e.X, false)
		}
		w.expr(e.Idx, false)
	case *ast.Member:
		if e.Arrow {
			if sym := identOf(e.X); sym != nil {
				w.add(evDeref, sym, e.DotPos)
			}
		}
		w.expr(e.X, e.Arrow == false && asLValue)
	case *ast.CastExpr:
		w.castExpr(e)
	}
}

func (w *eventWalker) castExpr(e *ast.CastExpr) {
	// Cast of a non-struct pointer to a struct pointer (CWE-588).
	if e.To != nil && e.To.IsPtr() && e.To.Elem != nil && e.To.Elem.Kind == types.Struct {
		if xt := e.X.Type(); xt != nil && xt.IsPtr() && xt.Elem != nil &&
			xt.Elem.Kind != types.Struct && !xt.Elem.IsVoid() {
			w.ff.structCasts = append(w.ff.structCasts, e.Pos())
		}
	}
	w.expr(e.X, false)
}

func (w *eventWalker) binary(e *ast.Binary) {
	switch e.Op {
	case ast.Eq, ast.Ne:
		if sym := identOf(e.X); sym != nil && sym.Type != nil && sym.Type.IsPtr() && isZero(e.Y) {
			w.add(evCmpNull, sym, e.OpPos)
		}
		if sym := identOf(e.Y); sym != nil && sym.Type != nil && sym.Type.IsPtr() && isZero(e.X) {
			w.add(evCmpNull, sym, e.OpPos)
		}
		if sym := identOf(e.X); sym != nil && sym.Type != nil && sym.Type.IsInteger() && isZero(e.Y) {
			w.add(evGuardNonzero, sym, e.OpPos)
		}
	case ast.Div, ast.Mod:
		if sym := identOf(e.Y); sym != nil {
			w.add(evDivisor, sym, e.OpPos)
		}
		if lit, ok := e.Y.(*ast.IntLit); ok && lit.Value == 0 {
			w.add(evDivisor, nil, e.OpPos) // literal zero divisor
		}
	case ast.Shl, ast.Shr:
		if cnt, ok := constIntOf(e.Y); ok && e.CommonType != nil {
			if cnt < 0 || cnt >= int64(e.CommonType.Bits()) {
				w.ff.badShifts = append(w.ff.badShifts, e.OpPos)
			}
		}
	}
	w.expr(e.X, false)
	w.expr(e.Y, false)
}

func (w *eventWalker) call(e *ast.Call) {
	if e.ArityMismatch {
		w.ff.arityCalls = append(w.ff.arityCalls, e)
	}
	if e.Fun.Name == "memcpy" && len(e.Args) == 3 {
		if base0, off0, ok0 := baseAndOffset(e.Args[0]); ok0 {
			if base1, off1, ok1 := baseAndOffset(e.Args[1]); ok1 && base0 == base1 {
				if n, ok := constIntOf(e.Args[2]); ok {
					lo0, hi0 := off0, off0+n
					lo1, hi1 := off1, off1+n
					if lo0 < hi1 && lo1 < hi0 {
						w.ff.overlapCalls = append(w.ff.overlapCalls, e)
					}
				}
			}
		}
	}
	if e.Fun.Name == "memcpy" && len(e.Args) == 3 {
		if sz, ok := e.Args[2].(*ast.SizeofExpr); ok && sz.Of != nil && sz.Of.IsPtr() {
			w.ff.sizeofPtrCopies = append(w.ff.sizeofPtrCopies, e.Pos())
		}
	}
	if e.Fun.Name == "free" && len(e.Args) == 1 {
		if sym := identOf(e.Args[0]); sym != nil {
			w.add(evFree, sym, e.LParen)
		}
	}
	for _, a := range e.Args {
		if sym := identOf(a); sym != nil {
			w.add(evCallArg, sym, a.Pos())
		}
		w.expr(a, false)
	}
}

// baseAndOffset decomposes `p + k` / `p` into (symbol, constant).
func baseAndOffset(e ast.Expr) (*ast.Symbol, int64, bool) {
	if sym := identOf(e); sym != nil {
		return sym, 0, true
	}
	if ce, ok := e.(*ast.CastExpr); ok {
		return baseAndOffset(ce.X)
	}
	if bin, ok := e.(*ast.Binary); ok && bin.Op == ast.Add {
		if sym := identOf(bin.X); sym != nil {
			if k, ok := constIntOf(bin.Y); ok {
				return sym, k, true
			}
		}
	}
	return nil, 0, false
}

func isZero(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Value == 0
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		if len(s.Stmts) == 0 {
			return false
		}
		return terminatesStmt(s.Stmts[len(s.Stmts)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminatesStmt(s.Then) && terminatesStmt(s.Else)
	case *ast.WhileStmt:
		// `while (1) {...}` with no break counts as non-falling.
		if lit, ok := s.Cond.(*ast.IntLit); ok && lit.Value != 0 {
			return !hasBreak(s.Body)
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.Call); ok {
			return call.Fun.Name == "exit"
		}
	}
	return false
}

func hasBreak(s ast.Stmt) bool {
	found := false
	ast.Walk(s, func(st ast.Stmt) bool {
		switch st.(type) {
		case *ast.BreakStmt:
			found = true
			return false
		case *ast.WhileStmt, *ast.ForStmt:
			return false // break binds to the inner loop
		}
		return true
	})
	return found
}
