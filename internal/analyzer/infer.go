package analyzer

import (
	"fmt"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/sema"
	"compdiff/internal/minic/types"
)

// infer is the dataflow tier focused on memory safety and nullability,
// deliberately path-insensitive: if a pointer is null-checked anywhere
// and dereferenced anywhere, it reports — which is why its null-deref
// recall is the highest of the static tools *and* why its false
// positive rate on that class is severe (Table 3: 77% detection, 69%
// FP). It largely ignores classes outside its focus.
type infer struct{}

// NewInfer returns the Infer-style analyzer.
func NewInfer() Tool { return infer{} }

func (infer) Name() string { return "infer" }

func (i infer) Analyze(info *sema.Info) []Finding {
	var out []Finding
	for _, ff := range analyzeFuncs(info) {
		out = append(out, i.nullDerefBiabduction(ff)...)
		out = append(out, i.useAfterFree(ff)...)
		out = append(out, i.doubleFree(ff)...)
		out = append(out, i.mallocBoundOOB(ff)...)
		out = append(out, i.taintedAllocArithmetic(ff)...)
		for _, e := range ff.events {
			if e.kind == evDivisor && e.sym == nil {
				out = append(out, Finding{Tool: "infer", Category: DivByZero, Pos: e.pos,
					Msg: "division by literal zero"})
			}
		}
	}
	return out
}

// nullDerefBiabduction reports a pointer that is both (a) possibly
// null — compared against null, assigned null, or returned by malloc
// — and (b) dereferenced somewhere in the function. No ordering or
// dominance reasoning: exactly the over-approximation that yields
// Infer-like recall and false positives.
func (infer) nullDerefBiabduction(ff *funcFacts) []Finding {
	mayBeNull := map[any]bool{}
	derefed := map[any]bool{}
	var derefPos = map[any]int{}
	for idx, e := range ff.events {
		switch e.kind {
		case evCmpNull, evMallocTo:
			mayBeNull[e.sym] = true
		case evDeref:
			if !derefed[e.sym] {
				derefed[e.sym] = true
				derefPos[e.sym] = idx
			}
		}
	}
	var out []Finding
	for sym := range derefed {
		if mayBeNull[sym] {
			s := sym.(*ast.Symbol)
			out = append(out, Finding{Tool: "infer", Category: NullDeref,
				Pos: ff.events[derefPos[sym]].pos,
				Msg: fmt.Sprintf("pointer %s may be null when dereferenced", s.Name)})
		}
	}
	return out
}

// useAfterFree flags source-order free-then-use without reassignment.
func (infer) useAfterFree(ff *funcFacts) []Finding {
	var out []Finding
	freed := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evFree:
			freed[e.sym] = true
		case evAssign, evCondAssign, evMallocTo:
			delete(freed, e.sym)
		case evDeref:
			if freed[e.sym] {
				out = append(out, Finding{Tool: "infer", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("use after free of %s", e.sym.Name)})
				delete(freed, e.sym)
			}
		}
	}
	return out
}

// doubleFree flags a second free in source order, even across
// branches (path-insensitive — a recall/precision trade).
func (infer) doubleFree(ff *funcFacts) []Finding {
	var out []Finding
	freed := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evFree:
			if freed[e.sym] {
				out = append(out, Finding{Tool: "infer", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("double free of %s", e.sym.Name)})
			}
			freed[e.sym] = true
		case evAssign, evCondAssign, evMallocTo:
			delete(freed, e.sym)
		}
	}
	return out
}

// mallocBoundOOB flags constant indexes and constant pointer offsets
// beyond a known object size (InferBO).
func (infer) mallocBoundOOB(ff *funcFacts) []Finding {
	var out []Finding
	size := map[any]int64{}
	for _, e := range ff.events {
		if e.kind == evMallocTo {
			size[e.sym] = e.extra
		}
	}
	objSize := func(sym *ast.Symbol) int64 {
		if sym.Type != nil && sym.Type.Kind == types.Array {
			return sym.Type.Size()
		}
		if sz, ok := size[sym]; ok {
			return sz
		}
		return -1
	}
	for _, e := range ff.events {
		if e.kind != evIndex || e.extra < 0 {
			continue
		}
		if sz := objSize(e.sym); sz >= 0 {
			if e.extra*e.extra2 >= sz || e.extra < 0 {
				out = append(out, Finding{Tool: "infer", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("index %d exceeds object of %d bytes", e.extra, sz)})
			}
		}
	}
	for _, ps := range ff.ptrSites {
		if sz := objSize(ps.sym); sz >= 0 {
			byteOff := ps.off * ps.elem
			if byteOff >= sz || byteOff < 0 {
				out = append(out, Finding{Tool: "infer", Category: MemoryError, Pos: ps.pos,
					Msg: fmt.Sprintf("offset %d exceeds object of %d bytes", ps.off, sz)})
			}
		}
	}
	return out
}

// taintedAllocArithmetic is Infer's INTEGER_OVERFLOW family: 32-bit
// arithmetic it cannot bound. It reports:
//
//   - 32-bit multiplications with an unbounded non-constant operand
//     ("unbounded" = never compared against a constant or masked in
//     *this* function — bounding done by a caller is invisible, the
//     FP source the paper measures at 25%);
//   - allocation sizes computed by arithmetic on non-constants;
//   - unsigned subtractions whose result is compared against a huge
//     constant — the wrap-then-check-too-late idiom.
func (infer) taintedAllocArithmetic(ff *funcFacts) []Finding {
	var out []Finding
	bounded := map[any]bool{}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		bin, ok := e.(*ast.Binary)
		if !ok {
			return
		}
		switch bin.Op {
		case ast.Lt, ast.Le, ast.Gt, ast.Ge:
			if sym := identOf(bin.X); sym != nil {
				bounded[sym] = true
			}
			if sym := identOf(bin.Y); sym != nil {
				bounded[sym] = true
			}
		case ast.Mod, ast.BitAnd:
			if sym := identOf(bin.X); sym != nil {
				bounded[sym] = true
			}
		}
	})
	unboundedVar := func(e ast.Expr) bool {
		sym := identOf(stripCasts(e))
		if sym == nil {
			return false
		}
		if _, isConst := constIntOf(e); isConst {
			return false
		}
		return !bounded[sym]
	}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		bin, ok := e.(*ast.Binary)
		if !ok || bin.CommonType == nil {
			return
		}
		switch {
		case bin.Op == ast.Mul && bin.CommonType.Bits() == 32 &&
			(unboundedVar(bin.X) || unboundedVar(bin.Y)):
			out = append(out, Finding{Tool: "infer", Category: IntegerError, Pos: bin.Pos(),
				Msg: "32-bit multiplication with unbounded operand may overflow"})
		case bin.Op == ast.Gt && isUnsignedSub(bin.X):
			if k, ok := constIntOf(bin.Y); ok && k >= 1<<31 {
				out = append(out, Finding{Tool: "infer", Category: IntegerError, Pos: bin.Pos(),
					Msg: "unsigned subtraction checked after the fact may have wrapped"})
			}
		}
	})
	// Allocation sizes built by arithmetic on non-constants.
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		call, ok := e.(*ast.Call)
		if !ok || call.Fun.Name != "malloc" || len(call.Args) != 1 {
			return
		}
		if bin, ok := stripCasts(call.Args[0]).(*ast.Binary); ok {
			if bin.Op == ast.Mul || bin.Op == ast.Add {
				if _, c1 := constIntOf(bin.X); !c1 {
					out = append(out, Finding{Tool: "infer", Category: IntegerError, Pos: bin.Pos(),
						Msg: "allocation size from unbounded arithmetic may overflow"})
				}
			}
		}
	})
	return out
}

// isUnsignedSub reports whether e is syntactically an unsigned 32-bit
// subtraction.
func isUnsignedSub(e ast.Expr) bool {
	bin, ok := stripCasts(e).(*ast.Binary)
	return ok && bin.Op == ast.Sub && bin.CommonType != nil &&
		!bin.CommonType.IsSigned() && bin.CommonType.Bits() == 32
}

func stripCasts(e ast.Expr) ast.Expr {
	for {
		if ce, ok := e.(*ast.CastExpr); ok {
			e = ce.X
			continue
		}
		return e
	}
}

func isLocalVar(sym *ast.Symbol) bool {
	return sym != nil && sym.Kind == ast.SymLocal
}
