package analyzer

import (
	"testing"

	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

func findings(t *testing.T, tool Tool, src string) []Finding {
	t.Helper()
	info := sema.MustCheck(parser.MustParse(src))
	return tool.Analyze(info)
}

func hasCategory(fs []Finding, c Category) bool {
	for _, f := range fs {
		if f.Category == c {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Cppcheck tier

func TestCppcheckConstIndexOOB(t *testing.T) {
	src := `
int main() {
    int a[4];
    a[0] = 1;
    a[5] = 2;
    return a[0];
}`
	fs := findings(t, NewCppcheck(), src)
	if !hasCategory(fs, MemoryError) {
		t.Fatalf("missed constant OOB: %v", fs)
	}
}

func TestCppcheckArity(t *testing.T) {
	src := `
int callee(int a, int b) { return a + b; }
int main() { return callee(1); }`
	if !hasCategory(findings(t, NewCppcheck(), src), BadCall) {
		t.Fatal("missed arity mismatch")
	}
}

func TestCppcheckMemcpyOverlap(t *testing.T) {
	src := `
int main() {
    char buf[16];
    memset(buf, 0, 16L);
    memcpy(buf + 2, buf, 8L);
    return 0;
}`
	if !hasCategory(findings(t, NewCppcheck(), src), APIMisuse) {
		t.Fatal("missed memcpy overlap")
	}
}

func TestCppcheckUninitStraightLine(t *testing.T) {
	src := `
int main() {
    int x;
    int y = x + 1;
    return y;
}`
	if !hasCategory(findings(t, NewCppcheck(), src), UninitMemory) {
		t.Fatal("missed straight-line uninit read")
	}
}

func TestCppcheckMissesFlowUninit(t *testing.T) {
	// Initialization via a helper that takes the address: a syntactic
	// tool assumes &x initializes (avoiding FPs) and therefore misses
	// the variant where the helper does not actually write.
	src := `
void maybe_init(int* p, int flag) {
    if (flag > 10) { *p = 1; }
}
int main() {
    int x;
    maybe_init(&x, 0);
    return x;
}`
	if hasCategory(findings(t, NewCppcheck(), src), UninitMemory) {
		t.Fatal("cppcheck tier should not see through &x")
	}
}

func TestCppcheckDivByLiteralZero(t *testing.T) {
	src := `int main() { int d = 1; return d / 0; }`
	if !hasCategory(findings(t, NewCppcheck(), src), DivByZero) {
		t.Fatal("missed literal zero division")
	}
}

func TestCppcheckNoFalsePositiveOnCleanCode(t *testing.T) {
	src := `
int sum(int* v, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += v[i]; }
    return s;
}
int main() {
    int a[4];
    for (int i = 0; i < 4; i++) { a[i] = i; }
    printf("%d\n", sum(a, 4));
    return 0;
}`
	if fs := findings(t, NewCppcheck(), src); len(fs) != 0 {
		t.Fatalf("false positives: %v", fs)
	}
}

// ---------------------------------------------------------------------------
// Infer tier

func TestInferNullDerefRecallAndFP(t *testing.T) {
	// Bad variant: check after deref — a genuine bug. Infer flags it.
	bad := `
int get(int* p) {
    int v = *p;
    if (p == 0) { return -1; }
    return v;
}
int main() { int x = 3; return get(&x); }`
	if !hasCategory(findings(t, NewInfer(), bad), NullDeref) {
		t.Fatal("missed check-after-deref")
	}
	// Good variant: check correctly dominates the deref — Infer's
	// path-insensitive heuristic still fires (its documented FP mode).
	good := `
int get(int* p) {
    if (p == 0) { return -1; }
    return *p;
}
int main() { int x = 3; return get(&x); }`
	if !hasCategory(findings(t, NewInfer(), good), NullDeref) {
		t.Fatal("expected the characteristic false positive")
	}
}

func TestInferUseAfterFree(t *testing.T) {
	src := `
int main() {
    int* p = (int*)malloc(16L);
    free(p);
    return *p;
}`
	if !hasCategory(findings(t, NewInfer(), src), MemoryError) {
		t.Fatal("missed UAF")
	}
}

func TestInferIntegerOverflowOnAlloc(t *testing.T) {
	src := `
int main() {
    int n = input_byte(0L);
    int m = input_byte(1L);
    char* p = (char*)malloc((long)(n * m));
    if (p != 0) { p[0] = 1; free(p); }
    return 0;
}`
	if !hasCategory(findings(t, NewInfer(), src), IntegerError) {
		t.Fatal("missed alloc-size overflow")
	}
}

func TestInferIgnoresShiftUB(t *testing.T) {
	src := `int main() { int s = 40; return 1 << s; }`
	if hasCategory(findings(t, NewInfer(), src), GeneralUB) {
		t.Fatal("infer tier should not check shifts")
	}
}

// ---------------------------------------------------------------------------
// Coverity tier

func TestCoverityShiftAndMissingReturn(t *testing.T) {
	src := `
int pick(int v) {
    if (v > 0) { return v << 33; }
}
int main() { return pick(1); }`
	fs := findings(t, NewCoverity(), src)
	if !hasCategory(fs, GeneralUB) {
		t.Fatalf("missed UB patterns: %v", fs)
	}
	ubCount := 0
	for _, f := range fs {
		if f.Category == GeneralUB {
			ubCount++
		}
	}
	if ubCount < 2 {
		t.Fatalf("expected both shift and missing-return findings, got %d", ubCount)
	}
}

func TestCoverityStructCast(t *testing.T) {
	src := `
struct Big { int a; int b; int c; };
int main() {
    int x = 5;
    int* p = &x;
    struct Big* b = (struct Big*)p;
    return b->c;
}`
	if !hasCategory(findings(t, NewCoverity(), src), BadStructPtr) {
		t.Fatal("missed struct cast")
	}
}

func TestCoverityLoopOverrun(t *testing.T) {
	src := `
int main() {
    int a[4];
    for (int i = 0; i <= 4; i++) { a[i] = i; }
    return a[0];
}`
	if !hasCategory(findings(t, NewCoverity(), src), MemoryError) {
		t.Fatal("missed loop overrun")
	}
}

func TestCoverityStrcpyOverflow(t *testing.T) {
	src := `
int main() {
    char buf[4];
    strcpy(buf, "too long for four");
    return 0;
}`
	if !hasCategory(findings(t, NewCoverity(), src), MemoryError) {
		t.Fatal("missed strcpy overflow")
	}
}

func TestCoverityUninitRecallWithFP(t *testing.T) {
	// Bad: assigned only under a condition that can be false.
	bad := `
int main() {
    int x;
    int mode = input_byte(0L);
    if (mode > 5) { x = 1; }
    return x;
}`
	if !hasCategory(findings(t, NewCoverity(), bad), UninitMemory) {
		t.Fatal("missed conditional-init uninit")
	}
	// Good-but-flagged: both branches assign, so the value is always
	// initialized; the branch-insensitive union heuristic fires anyway.
	goodFlagged := `
int main() {
    int x;
    int mode = input_byte(0L);
    if (mode > 5) { x = 1; } else { x = 2; }
    return x;
}`
	if !hasCategory(findings(t, NewCoverity(), goodFlagged), UninitMemory) {
		t.Fatal("expected the characteristic FP on branch-complete init")
	}
	// Clean: unconditional init; silent.
	clean := `
int main() {
    int x = 0;
    return x;
}`
	if hasCategory(findings(t, NewCoverity(), clean), UninitMemory) {
		t.Fatal("FP on unconditional init")
	}
}

func TestCoverityDivZeroTaintHeuristic(t *testing.T) {
	// Unvalidated input divisor: reported.
	unguarded := `
int main() {
    int d = input_byte(0L);
    return 100 / d;
}`
	if !hasCategory(findings(t, NewCoverity(), unguarded), DivByZero) {
		t.Fatal("missed unvalidated input divisor")
	}
	// A visible integer zero-guard suppresses the report.
	guarded := `
int main() {
    int d = input_byte(0L);
    if (d == 0) { return -1; }
    return 100 / d;
}`
	if hasCategory(findings(t, NewCoverity(), guarded), DivByZero) {
		t.Fatal("FP despite visible guard")
	}
	// A float guard is invisible to the integer-shaped heuristic: the
	// characteristic false positive on correctly guarded float code.
	floatGuarded := `
int main() {
    double d = (double)input_byte(0L);
    if (d == 0.0) { return -1; }
    printf("%f\n", 10.5 / d);
    return 0;
}`
	if !hasCategory(findings(t, NewCoverity(), floatGuarded), DivByZero) {
		t.Fatal("expected the float-guard FP")
	}
}

func TestCoverityAssignedZeroDivisor(t *testing.T) {
	src := `
int main() {
    double z = 0.0;
    double x = 5.5;
    printf("%f\n", x / z);
    return 0;
}`
	if !hasCategory(findings(t, NewCoverity(), src), DivByZero) {
		t.Fatal("missed assigned-zero divisor")
	}
}

func TestCoverityMallocNullDeref(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    p[0] = 1;
    free(p);
    return 0;
}`
	if !hasCategory(findings(t, NewCoverity(), src), NullDeref) {
		t.Fatal("missed unchecked malloc deref")
	}
	checked := `
int main() {
    char* p = (char*)malloc(8L);
    if (p == 0) { return 1; }
    p[0] = 1;
    free(p);
    return 0;
}`
	if hasCategory(findings(t, NewCoverity(), checked), NullDeref) {
		t.Fatal("FP on checked malloc")
	}
}

func TestAllToolsRegistered(t *testing.T) {
	tools := AllTools()
	if len(tools) != 3 {
		t.Fatalf("tools = %d", len(tools))
	}
	names := map[string]bool{}
	for _, tool := range tools {
		names[tool.Name()] = true
	}
	for _, want := range []string{"coverity", "cppcheck", "infer"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestNoToolSeesPointerSubtraction(t *testing.T) {
	// CWE-469: all static tools score 0% in Table 3.
	src := `
int main() {
    char a[8];
    char b[8];
    a[0] = 0; b[0] = 0;
    long d = &b[0] - &a[0];
    printf("%ld\n", d);
    return 0;
}`
	for _, tool := range AllTools() {
		if hasCategory(findings(t, tool, src), PtrSubtraction) {
			t.Errorf("%s unexpectedly detects pointer subtraction", tool.Name())
		}
	}
}
