package analyzer

import (
	"fmt"

	"compdiff/internal/minic/sema"
	"compdiff/internal/minic/types"
)

// cppcheck is the syntactic tier: same-function pattern matching with
// no path reasoning. Its hallmarks in Table 3 are the near-zero false
// positives, the perfect scores on purely syntactic CWEs (475, 685),
// and blindness to anything dataflow-shaped.
type cppcheck struct{}

// NewCppcheck returns the Cppcheck-style analyzer.
func NewCppcheck() Tool { return cppcheck{} }

func (cppcheck) Name() string { return "cppcheck" }

func (c cppcheck) Analyze(info *sema.Info) []Finding {
	var out []Finding
	for _, ff := range analyzeFuncs(info) {
		// CWE-685: wrong number of call arguments — purely syntactic.
		for _, call := range ff.arityCalls {
			out = append(out, Finding{Tool: "cppcheck", Category: BadCall, Pos: call.Pos(),
				Msg: fmt.Sprintf("function %s called with wrong number of arguments", call.Fun.Name)})
		}
		// CWE-475: overlapping memcpy with syntactically same base.
		for _, call := range ff.overlapCalls {
			out = append(out, Finding{Tool: "cppcheck", Category: APIMisuse, Pos: call.Pos(),
				Msg: "overlapping buffers passed to memcpy"})
		}
		for _, pos := range ff.sizeofPtrCopies {
			out = append(out, Finding{Tool: "cppcheck", Category: MemoryError, Pos: pos,
				Msg: "memcpy length is sizeof(pointer); did you mean the pointee size?"})
		}
		out = append(out, c.constIndexOOB(ff)...)
		out = append(out, c.literalDivZero(ff)...)
		out = append(out, c.literalNullDeref(ff)...)
		out = append(out, c.uninitSameBlock(ff)...)
		out = append(out, c.doubleFreeStraightLine(ff)...)
		out = append(out, c.freeNonHeap(ff)...)
	}
	return out
}

// constIndexOOB flags a[K] with constant K outside a fixed-size array
// or constant-size malloc chunk.
func (cppcheck) constIndexOOB(ff *funcFacts) []Finding {
	var out []Finding
	mallocSize := map[any]int64{}
	for _, e := range ff.events {
		if e.kind == evMallocTo {
			mallocSize[e.sym] = e.extra
		}
	}
	for _, e := range ff.events {
		if e.kind != evIndex || e.extra < 0 {
			continue
		}
		var objSize int64 = -1
		if e.sym.Type != nil && e.sym.Type.Kind == types.Array {
			objSize = e.sym.Type.Size()
		} else if sz, ok := mallocSize[e.sym]; ok && sz >= 0 {
			objSize = sz
		}
		if objSize < 0 {
			continue
		}
		byteOff := e.extra * e.extra2
		if byteOff >= objSize || byteOff < 0 {
			out = append(out, Finding{Tool: "cppcheck", Category: MemoryError, Pos: e.pos,
				Msg: fmt.Sprintf("array index %d out of bounds (object is %d bytes)", e.extra, objSize)})
		}
	}
	return out
}

// literalDivZero flags `x / 0` and division by a variable whose last
// straight-line assignment is the literal 0.
func (cppcheck) literalDivZero(ff *funcFacts) []Finding {
	var out []Finding
	zeroNow := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evAssignZero:
			if !e.cond {
				zeroNow[e.sym] = true
			}
		case evAssign, evCondAssign:
			delete(zeroNow, e.sym)
		case evGuardNonzero:
			// A guard comparing the value against zero means the code
			// handles the case; stay quiet (syntactic tools suppress).
			delete(zeroNow, e.sym)
		case evDivisor:
			if e.sym == nil {
				out = append(out, Finding{Tool: "cppcheck", Category: DivByZero, Pos: e.pos,
					Msg: "division by literal zero"})
			} else if zeroNow[e.sym] {
				out = append(out, Finding{Tool: "cppcheck", Category: DivByZero, Pos: e.pos,
					Msg: "division by variable that is zero here"})
			}
		}
	}
	return out
}

// literalNullDeref flags *p after an unconditional `p = 0`.
func (cppcheck) literalNullDeref(ff *funcFacts) []Finding {
	var out []Finding
	isNull := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evCmpNull:
			if e.extra == 1 && !e.cond { // assigned NULL unconditionally
				isNull[e.sym] = true
			}
		case evAssign, evCondAssign:
			if e.extra != 1 {
				delete(isNull, e.sym)
			}
		case evMallocTo:
			delete(isNull, e.sym)
		case evDeref:
			if isNull[e.sym] {
				out = append(out, Finding{Tool: "cppcheck", Category: NullDeref, Pos: e.pos,
					Msg: fmt.Sprintf("null pointer dereference: %s", e.sym.Name)})
				delete(isNull, e.sym)
			}
		}
	}
	return out
}

// uninitSameBlock flags locals read before any assignment, address
// taking, or call passing — in straight-line order.
func (cppcheck) uninitSameBlock(ff *funcFacts) []Finding {
	var out []Finding
	locals := map[any]bool{} // declared, not yet initialized
	for l := range ff.declNoInit {
		locals[l] = true
	}
	for _, e := range ff.events {
		if e.sym == nil || !locals[e.sym] {
			continue
		}
		switch e.kind {
		case evAssign, evCondAssign, evAddrTaken, evMallocTo:
			// Conservative: any write-ish event counts as initialized
			// (cppcheck avoids false positives at the cost of recall).
			delete(locals, e.sym)
		case evRead:
			out = append(out, Finding{Tool: "cppcheck", Category: UninitMemory, Pos: e.pos,
				Msg: fmt.Sprintf("uninitialized variable: %s", e.sym.Name)})
			delete(locals, e.sym)
		}
	}
	return out
}

// doubleFreeStraightLine flags free(p); free(p) with no intervening
// reassignment.
func (cppcheck) doubleFreeStraightLine(ff *funcFacts) []Finding {
	var out []Finding
	freed := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evFree:
			if freed[e.sym] && !e.cond {
				out = append(out, Finding{Tool: "cppcheck", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("double free of %s", e.sym.Name)})
			}
			if !e.cond {
				freed[e.sym] = true
			}
		case evAssign, evCondAssign, evMallocTo:
			delete(freed, e.sym)
		}
	}
	return out
}

// freeNonHeap flags free of arrays and address-of locals (CWE-590's
// syntactic face).
func (cppcheck) freeNonHeap(ff *funcFacts) []Finding {
	var out []Finding
	for _, e := range ff.events {
		if e.kind != evFree || e.sym == nil || e.sym.Type == nil {
			continue
		}
		if e.sym.Type.Kind == types.Array {
			out = append(out, Finding{Tool: "cppcheck", Category: MemoryError, Pos: e.pos,
				Msg: fmt.Sprintf("free() of non-heap object %s", e.sym.Name)})
		}
	}
	return out
}
