package analyzer

import (
	"fmt"

	"compdiff/internal/minic/ast"
	"compdiff/internal/minic/sema"
	"compdiff/internal/minic/types"
)

// coverity is the broad-coverage tier: every checker family, flow
// awareness within a function, and recall-leaning heuristics. Its
// Table 3 silhouette: the best static scores on general UB, divide by
// zero and API misuse; moderate memory-error recall; and visible false
// positive rates wherever its heuristics guess about paths (uninit 56%
// FP being the worst).
type coverity struct{}

// NewCoverity returns the Coverity-style analyzer.
func NewCoverity() Tool { return coverity{} }

func (coverity) Name() string { return "coverity" }

func (c coverity) Analyze(info *sema.Info) []Finding {
	var out []Finding
	for _, ff := range analyzeFuncs(info) {
		// Syntactic certainties (CWE-685, CWE-475, CWE-758 shifts).
		for _, call := range ff.arityCalls {
			out = append(out, Finding{Tool: "coverity", Category: BadCall, Pos: call.Pos(),
				Msg: fmt.Sprintf("call to %s with mismatched arity", call.Fun.Name)})
		}
		for _, call := range ff.overlapCalls {
			out = append(out, Finding{Tool: "coverity", Category: APIMisuse, Pos: call.Pos(),
				Msg: "overlapping memcpy operands"})
		}
		for _, pos := range ff.badShifts {
			out = append(out, Finding{Tool: "coverity", Category: GeneralUB, Pos: pos,
				Msg: "shift amount exceeds operand width"})
		}
		if ff.missingReturn {
			out = append(out, Finding{Tool: "coverity", Category: GeneralUB, Pos: ff.fn.Pos(),
				Msg: fmt.Sprintf("non-void function %s may fall off the end", ff.fn.Name)})
		}
		for _, pos := range ff.structCasts {
			out = append(out, Finding{Tool: "coverity", Category: BadStructPtr, Pos: pos,
				Msg: "cast to struct pointer may access past the underlying object"})
		}
		out = append(out, c.overrunChecks(ff)...)
		out = append(out, c.taintedIndexChecks(ff)...)
		out = append(out, c.uninitChecks(ff)...)
		out = append(out, c.divZeroChecks(ff)...)
		out = append(out, c.nullChecks(ff)...)
		out = append(out, c.intOverflowChecks(ff)...)
		out = append(out, c.resourceChecks(ff)...)
	}
	return out
}

// overrunChecks: constant-index OOB on arrays and constant mallocs,
// plus constant loop bounds that overrun a fixed buffer.
func (coverity) overrunChecks(ff *funcFacts) []Finding {
	var out []Finding
	mallocSize := map[any]int64{}
	for _, e := range ff.events {
		if e.kind == evMallocTo {
			mallocSize[e.sym] = e.extra
		}
	}
	objSize := func(sym *ast.Symbol) int64 {
		if sym.Type != nil && sym.Type.Kind == types.Array {
			return sym.Type.Size()
		}
		if sz, ok := mallocSize[sym]; ok {
			return sz
		}
		return -1
	}
	for _, e := range ff.events {
		if e.kind != evIndex || e.extra < 0 {
			continue
		}
		if sz := objSize(e.sym); sz >= 0 {
			byteOff := e.extra * e.extra2
			if byteOff >= sz || byteOff < 0 {
				out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("OVERRUN: index %d outside %d-byte object %s", e.extra, sz, e.sym.Name)})
			}
		}
	}
	// Constant-offset pointer dereferences *(p + K).
	for _, ps := range ff.ptrSites {
		if sz := objSize(ps.sym); sz >= 0 {
			byteOff := ps.off * ps.elem
			if byteOff >= sz || byteOff < 0 {
				out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: ps.pos,
					Msg: fmt.Sprintf("OVERRUN: offset %d outside %d-byte object %s", ps.off, sz, ps.sym.Name)})
			}
		}
	}
	// Loop-bound overruns: for (i = 0; i <= N; ...) arr[i] with
	// N >= len(arr), and strcpy of a longer literal into a fixed array.
	ast.Walk(ff.fn.Body, func(s ast.Stmt) bool {
		fs, ok := s.(*ast.ForStmt)
		if !ok || fs.Cond == nil {
			return true
		}
		cond, ok := fs.Cond.(*ast.Binary)
		if !ok {
			return true
		}
		ivar := identOf(cond.X)
		bound, haveBound := constIntOf(cond.Y)
		if ivar == nil || !haveBound {
			return true
		}
		maxIdx := bound - 1
		if cond.Op == ast.Le {
			maxIdx = bound
		} else if cond.Op != ast.Lt {
			return true
		}
		ast.WalkExprs(fs.Body, func(e ast.Expr) {
			ix, ok := e.(*ast.Index)
			if !ok {
				return
			}
			base := identOf(ix.X)
			if base == nil || identOf(ix.Idx) != ivar {
				return
			}
			if sz := objSize(base); sz >= 0 && ix.Type() != nil {
				if maxIdx*ix.Type().Size() >= sz {
					out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: ix.Pos(),
						Msg: fmt.Sprintf("OVERRUN: loop writes %s up to index %d", base.Name, maxIdx)})
				}
			}
		})
		return true
	})
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		call, ok := e.(*ast.Call)
		if !ok || call.Fun.Name != "strcpy" || len(call.Args) != 2 {
			return
		}
		dst := identOf(call.Args[0])
		lit, isLit := call.Args[1].(*ast.StrLit)
		if dst == nil || !isLit || dst.Type == nil || dst.Type.Kind != types.Array {
			return
		}
		if int64(len(lit.Value))+1 > dst.Type.Size() {
			out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: call.Pos(),
				Msg: fmt.Sprintf("STRING_OVERFLOW: %d-byte literal into %d-byte buffer", len(lit.Value)+1, dst.Type.Size())})
		}
	})
	return out
}

// taintedIndexChecks is the TAINTED_SCALAR family: an index variable
// that comes from input and is never compared against any bound in
// this function. Recall-leaning: bounding done by a helper function is
// invisible, producing the characteristic false positives.
func (coverity) taintedIndexChecks(ff *funcFacts) []Finding {
	var out []Finding
	tainted := taintedInputSyms(ff)
	bounded := map[any]bool{}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Binary:
			switch e.Op {
			case ast.Lt, ast.Le, ast.Gt, ast.Ge:
				if sym := identOf(e.X); sym != nil {
					bounded[sym] = true
				}
				if sym := identOf(e.Y); sym != nil {
					bounded[sym] = true
				}
			case ast.BitAnd, ast.Mod:
				// Masking or reducing the value bounds it.
				if sym := identOf(e.X); sym != nil {
					bounded[sym] = true
				}
			}
		}
	})
	seen := map[any]bool{}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		ix, ok := e.(*ast.Index)
		if !ok {
			return
		}
		sym := identOf(ix.Idx)
		if sym == nil || !tainted[sym] || bounded[sym] || seen[sym] {
			return
		}
		seen[sym] = true
		out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: ix.Pos(),
			Msg: fmt.Sprintf("TAINTED_SCALAR: %s indexes a buffer without bounds checking", sym.Name)})
	})
	return out
}

// uninitChecks: a local without initializer that is read, where no
// *unconditional* assignment precedes the read. Assignments under
// conditions don't count — the recall-leaning guess that produces
// Coverity's 56% FP rate on this class (the guard may in fact always
// execute).
func (coverity) uninitChecks(ff *funcFacts) []Finding {
	var out []Finding
	unconditional := map[any]bool{}
	reported := map[any]bool{}
	for _, e := range ff.events {
		if e.sym == nil {
			continue
		}
		switch e.kind {
		case evAssign, evMallocTo:
			unconditional[e.sym] = true
		case evAddrTaken:
			unconditional[e.sym] = true // &x passed out: assume initialized
		case evRead, evDivisor:
			if ff.declNoInit[e.sym] && !unconditional[e.sym] && !reported[e.sym] {
				reported[e.sym] = true
				out = append(out, Finding{Tool: "coverity", Category: UninitMemory, Pos: e.pos,
					Msg: fmt.Sprintf("UNINIT: %s may be used uninitialized", e.sym.Name)})
			}
		}
	}
	return out
}

// divZeroChecks: literal zero divisors; divisors that are checked
// against zero in the function (the check proves zero is possible —
// recall-leaning, FP when the guard actually protects the division);
// and divisors derived straight from input bytes.
func (coverity) divZeroChecks(ff *funcFacts) []Finding {
	var out []Finding
	guarded := map[any]bool{}
	zeroed := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evGuardNonzero:
			guarded[e.sym] = true
		case evAssignZero:
			zeroed[e.sym] = true
		}
	}
	tainted := taintedInputSyms(ff)
	seen := map[any]bool{}
	for _, e := range ff.events {
		if e.kind != evDivisor {
			continue
		}
		if e.sym == nil {
			out = append(out, Finding{Tool: "coverity", Category: DivByZero, Pos: e.pos,
				Msg: "DIVIDE_BY_ZERO: literal zero divisor"})
			continue
		}
		if seen[e.sym] {
			continue
		}
		switch {
		case zeroed[e.sym]:
			seen[e.sym] = true
			out = append(out, Finding{Tool: "coverity", Category: DivByZero, Pos: e.pos,
				Msg: fmt.Sprintf("DIVIDE_BY_ZERO: %s holds a literal zero", e.sym.Name)})
		case tainted[e.sym] && !guarded[e.sym] && e.sym.Type != nil && e.sym.Type.IsInteger():
			// Input-derived integer divisor with no visible zero/bound
			// guard. Guards in other functions are invisible.
			seen[e.sym] = true
			out = append(out, Finding{Tool: "coverity", Category: DivByZero, Pos: e.pos,
				Msg: fmt.Sprintf("DIVIDE_BY_ZERO: unvalidated input %s used as divisor", e.sym.Name)})
		}
	}
	// FLOAT_EQUALITY: an exact float comparison used to guard a
	// division is unreliable in general — reported even when, as here,
	// comparing against literal zero is in fact sound (an FP).
	divisors := map[any]bool{}
	for _, e := range ff.events {
		if e.kind == evDivisor && e.sym != nil {
			divisors[e.sym] = true
		}
	}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		bin, ok := e.(*ast.Binary)
		if !ok || (bin.Op != ast.Eq && bin.Op != ast.Ne) {
			return
		}
		sym := identOf(bin.X)
		if sym == nil || sym.Type == nil || !sym.Type.IsFloat() || !divisors[sym] {
			return
		}
		if _, isLit := bin.Y.(*ast.FloatLit); isLit {
			out = append(out, Finding{Tool: "coverity", Category: DivByZero, Pos: bin.Pos(),
				Msg: fmt.Sprintf("FLOAT_EQUALITY: exact comparison guards division by %s", sym.Name)})
		}
	})
	return out
}

// nullChecks: dereference after an unconditional null assignment, and
// malloc results dereferenced without a null check anywhere.
func (coverity) nullChecks(ff *funcFacts) []Finding {
	var out []Finding
	isNull := map[any]bool{}
	checked := map[any]bool{}
	fromMalloc := map[any]bool{}
	for _, e := range ff.events {
		if e.kind == evCmpNull && e.extra == 0 {
			checked[e.sym] = true
		}
	}
	for _, e := range ff.events {
		switch e.kind {
		case evCmpNull:
			if e.extra == 1 && !e.cond {
				isNull[e.sym] = true
			}
		case evMallocTo:
			fromMalloc[e.sym] = true
			delete(isNull, e.sym)
		case evAssign, evCondAssign:
			// recordAssign emits evCmpNull(extra=1) separately for
			// NULL; other assignments clear the fact.
		case evDeref:
			if isNull[e.sym] {
				out = append(out, Finding{Tool: "coverity", Category: NullDeref, Pos: e.pos,
					Msg: fmt.Sprintf("FORWARD_NULL: %s is null here", e.sym.Name)})
				delete(isNull, e.sym)
			} else if fromMalloc[e.sym] && !checked[e.sym] {
				out = append(out, Finding{Tool: "coverity", Category: NullDeref, Pos: e.pos,
					Msg: fmt.Sprintf("NULL_RETURNS: unchecked allocation %s dereferenced", e.sym.Name)})
				delete(fromMalloc, e.sym)
			}
		}
	}
	return out
}

// intOverflowChecks: narrow signed arithmetic on two non-constant
// operands whose result reaches a wider store, an allocation, or an
// index — but only when no range guard on either operand is visible
// (the precision move that keeps recall at Coverity's moderate level).
func (coverity) intOverflowChecks(ff *funcFacts) []Finding {
	var out []Finding
	guarded := map[any]bool{}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		bin, ok := e.(*ast.Binary)
		if !ok {
			return
		}
		switch bin.Op {
		case ast.Lt, ast.Le, ast.Gt, ast.Ge:
			if sym := identOf(bin.X); sym != nil {
				if _, isConst := constIntOf(bin.Y); isConst {
					guarded[sym] = true
				}
			}
			if sym := identOf(bin.Y); sym != nil {
				if _, isConst := constIntOf(bin.X); isConst {
					guarded[sym] = true
				}
			}
		}
	})
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		bin, ok := e.(*ast.Binary)
		if !ok || bin.CommonType == nil || !bin.CommonType.IsSigned() || bin.CommonType.Bits() != 32 {
			return
		}
		if bin.Op != ast.Mul && bin.Op != ast.Add {
			return
		}
		xs, ys := identOf(bin.X), identOf(bin.Y)
		if xs == nil || ys == nil {
			return
		}
		if guarded[xs] || guarded[ys] {
			return
		}
		if bin.Op == ast.Mul {
			out = append(out, Finding{Tool: "coverity", Category: IntegerError, Pos: bin.Pos(),
				Msg: "OVERFLOW_BEFORE_WIDEN: unguarded 32-bit multiplication"})
		}
	})
	return out
}

// resourceChecks: double free / use-after-free with flow awareness
// (branch-aware: a conditional free followed by an unconditional free
// is still flagged), and free of non-heap objects.
func (coverity) resourceChecks(ff *funcFacts) []Finding {
	var out []Finding
	freed := map[any]bool{}
	for _, e := range ff.events {
		switch e.kind {
		case evFree:
			if e.sym == nil {
				continue
			}
			if e.sym.Type != nil && e.sym.Type.Kind == types.Array {
				out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("BAD_FREE: %s is not heap-allocated", e.sym.Name)})
				continue
			}
			if freed[e.sym] {
				out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("USE_AFTER_FREE: double free of %s", e.sym.Name)})
			}
			freed[e.sym] = true
		case evAssign, evCondAssign, evMallocTo:
			delete(freed, e.sym)
		case evDeref:
			if freed[e.sym] {
				out = append(out, Finding{Tool: "coverity", Category: MemoryError, Pos: e.pos,
					Msg: fmt.Sprintf("USE_AFTER_FREE: %s used after free", e.sym.Name)})
				delete(freed, e.sym)
			}
		}
	}
	return out
}

// taintedInputSyms collects variables assigned (or initialized)
// directly from the input builtins — the taint sources for the
// TAINTED_SCALAR and DIVIDE_BY_ZERO input heuristics. Arithmetic on a
// tainted value keeps the taint when it stays in the same variable.
func taintedInputSyms(ff *funcFacts) map[any]bool {
	tainted := map[any]bool{}
	fromInput := func(e ast.Expr) bool {
		found := false
		walkA(e, func(x ast.Expr) {
			if call, ok := x.(*ast.Call); ok &&
				(call.Fun.Name == "input_byte" || call.Fun.Name == "read_input" || call.Fun.Name == "input_size") {
				found = true
			}
		})
		return found
	}
	ast.WalkExprs(ff.fn.Body, func(e ast.Expr) {
		if as, ok := e.(*ast.Assign); ok {
			if sym := identOf(as.LHS); sym != nil && fromInput(as.RHS) {
				tainted[sym] = true
			}
		}
	})
	ast.Walk(ff.fn.Body, func(s ast.Stmt) bool {
		if ds, ok := s.(*ast.DeclStmt); ok {
			for _, d := range ds.Decls {
				if d.Init != nil && d.Sym != nil && fromInput(d.Init) {
					tainted[d.Sym] = true
				}
			}
		}
		return true
	})
	return tainted
}

// walkA is a local expression pre-order walk.
func walkA(e ast.Expr, fn func(ast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *ast.Unary:
		walkA(e.X, fn)
	case *ast.Binary:
		walkA(e.X, fn)
		walkA(e.Y, fn)
	case *ast.Assign:
		walkA(e.LHS, fn)
		walkA(e.RHS, fn)
	case *ast.Cond:
		walkA(e.C, fn)
		walkA(e.X, fn)
		walkA(e.Y, fn)
	case *ast.Call:
		for _, a := range e.Args {
			walkA(a, fn)
		}
	case *ast.Index:
		walkA(e.X, fn)
		walkA(e.Idx, fn)
	case *ast.Member:
		walkA(e.X, fn)
	case *ast.CastExpr:
		walkA(e.X, fn)
	}
}
