package checkpoint

// Per-worker directory layout for a supervised fuzzing farm. The
// supervisor (internal/supervisor) runs N worker processes under one
// farm root; each worker owns a self-contained subtree holding its
// crash-safe checkpoint, its telemetry (plot.jsonl + heartbeat), its
// diff evidence, and its captured log:
//
//	<farm>/workers/worker-000/
//	    checkpoint/   MANIFEST.json + state-*.ckpt (this package)
//	    stats/        plot.jsonl, STATUS.json heartbeat
//	    diffs/        evidence files (core.DiffStore)
//	    worker.log    combined stdout+stderr of the worker process
//
// The layout lives here rather than in the supervisor because the
// checkpoint protocol is the worker hand-off format: a worker killed
// at any instant resumes from <dir>/checkpoint exactly like a
// single-process campaign resumes, and the supervisor only ever
// *reads* the subtree (manifest watermarks, heartbeats, plot tails,
// checkpointed finding sets).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const workersSubdir = "workers"

// WorkerDirs names one worker's subtree of a farm root.
type WorkerDirs struct {
	// Root is the worker's directory, <farm>/workers/worker-NNN.
	Root string
	// Checkpoint holds the crash-safe campaign snapshot (Saver/Load).
	Checkpoint string
	// Stats holds plot.jsonl and the STATUS.json heartbeat.
	Stats string
	// Diff is the DiffStore directory (evidence under Diff/diffs/).
	Diff string
	// Heartbeat is the atomic per-barrier status file.
	Heartbeat string
	// Log is the worker process's combined stdout+stderr capture.
	Log string
}

// WorkerLayout computes (without creating) worker index's directories
// under the farm root.
func WorkerLayout(farm string, index int) WorkerDirs {
	root := filepath.Join(farm, workersSubdir, fmt.Sprintf("worker-%03d", index))
	return WorkerDirs{
		Root:       root,
		Checkpoint: filepath.Join(root, "checkpoint"),
		Stats:      filepath.Join(root, "stats"),
		Diff:       root,
		Heartbeat:  filepath.Join(root, "stats", "STATUS.json"),
		Log:        filepath.Join(root, "worker.log"),
	}
}

// EnsureWorker creates worker index's directories under the farm root
// (idempotent) and returns the layout.
func EnsureWorker(farm string, index int) (WorkerDirs, error) {
	d := WorkerLayout(farm, index)
	for _, dir := range []string{d.Root, d.Checkpoint, d.Stats} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return WorkerDirs{}, fmt.Errorf("checkpoint: worker layout: %w", err)
		}
	}
	return d, nil
}

// ListWorkers returns the sorted indexes of the worker directories
// that exist under the farm root. A missing workers/ directory is an
// empty farm, not an error — a fresh -serve run starts there.
func ListWorkers(farm string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(farm, workersSubdir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: list workers: %w", err)
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "worker-") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "worker-"))
		if err != nil || n < 0 {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// ReadManifest loads and validates just the checkpoint manifest in
// dir — the cheap watermark read the supervisor performs after every
// worker exit (SpentExecs is the durable progress watermark; loading
// the full state would decode every stored finding).
func ReadManifest(dir string) (*Manifest, error) {
	return loadManifest(dir)
}
