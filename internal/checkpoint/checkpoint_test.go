package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"compdiff/internal/core"
	"compdiff/internal/fuzz"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
	"compdiff/internal/vm"
)

// sampleState builds a representative snapshot exercising every wire
// field: multiple shards, queue entries, crashes, full and skeletal
// diff entries, buckets with signature sets, and telemetry.
func sampleState(seq int) *State {
	outcome := &core.Outcome{
		Input: []byte{0x01, 0xff, 0x00, 0x7f},
		Results: []*vm.Result{
			{Exit: vm.Exited, Stdout: []byte("a=1\n"), Steps: 120},
			{Exit: vm.Exited, Stdout: []byte("a=2\n"), Steps: 130,
				San: &vm.SanReport{Tool: "msan", Kind: "uninit-read", Func: "main", Line: 3}},
		},
		Hashes:   []uint64{0x1111, 0x2222},
		Diverged: true,
	}
	fs := &fuzz.State{
		MutCursor: 12345 + uint64(seq),
		RngCursor: 678,
		Virgin:    make([]byte, fuzz.MapSize),
		Queue: []*fuzz.Seed{
			{Data: []byte("seed-a"), CovBits: 9, Hash: 0xaaa, Favored: true, Execs: 3},
			{Data: []byte{0, 1, 2}, CovBits: 4, Hash: 0xbbb},
		},
		Hashes: []uint64{0xaaa, 0xbbb},
		Crashes: []*fuzz.Crash{
			{Input: []byte("boom"), Result: &vm.Result{Exit: vm.SigSegv, Code: 11}},
		},
		Execs:       4000,
		Cycles:      7,
		LastNewPath: 3500,
	}
	fs.Virgin[17] = 0x80
	return &State{
		OptionsHash:   0xdeadbeefcafef00d,
		SpentExecs:    int64(4000 * seq),
		PersistErrors: 2,
		Shards: []ShardState{
			{
				Index:     0,
				Fuzzer:    fs,
				QueueSeen: []uint64{0xaaa, 0xbbb},
				DiffExecs: 8000,
				Diffs:     []*core.StoredDiff{{Signature: 0x51, Count: 5}},
				DiffTotal: 5,
				Buckets: []triage.BucketSnapshot{{
					Fingerprint: triage.Fingerprint{Partition: []uint8{0, 1}, Classes: []uint8{0, 0}, Stage: 2},
					Key:         0x7e57,
					Count:       5,
					Signatures:  []uint64{0x51},
				}},
				BucketTotal: 5,
				Metrics: &MetricsState{
					Execs:     4000,
					DiffExecs: 8000,
					Classes:   [telemetry.NumClasses]int64{3990, 3, 2, 5},
					Impls: []telemetry.ImplSummary{
						{Name: "clang-O0", Outcomes: [telemetry.NumClasses]int64{4000, 0, 0, 0},
							Latency: telemetry.HistogramSnapshot{Count: 4000, Sum: 999, Min: 1, Max: 40}},
					},
				},
			},
			{Index: 1, Dead: true, Fuzzer: fs},
		},
		Diffs:       []*core.StoredDiff{{Signature: 0x51, Outcome: outcome, Count: 5}},
		DiffTotal:   5,
		Buckets:     []triage.BucketSnapshot{{Key: 0x7e57, Outcome: outcome, Count: 5, Signatures: []uint64{0x51}}},
		BucketTotal: 5,
	}
}

// TestSaveLoadRoundTrip pins the core property: snapshot → save →
// load → snapshot is byte-identical.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := sampleState(1)
	if err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	got, man, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 1 || man.OptionsHash != st.OptionsHash || man.Shards != 2 {
		t.Fatalf("manifest %+v", man)
	}
	a, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("round trip not structurally identical")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, _, err := Load(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	if Exists(t.TempDir()) {
		t.Fatal("Exists on empty dir")
	}
}

// saveOne writes one checkpoint into a fresh dir and returns the dir
// and the manifest's state-file path.
func saveOne(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := NewSaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(sampleState(1)); err != nil {
		t.Fatal(err)
	}
	man, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, man.StateFile)
}

// TestLoadDetectsTruncation: a state file cut short (a torn write that
// somehow survived, or disk damage) must fail with ErrCorrupt.
func TestLoadDetectsTruncation(t *testing.T) {
	dir, stateFile := saveOne(t)
	data, err := os.ReadFile(stateFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stateFile, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestLoadDetectsBitFlip: same-size corruption passes the size check
// and must be caught by the checksum.
func TestLoadDetectsBitFlip(t *testing.T) {
	dir, stateFile := saveOne(t)
	data, err := os.ReadFile(stateFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(stateFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadDetectsManifestDamage(t *testing.T) {
	for name, content := range map[string]string{
		"garbage":       "{not json",
		"wrong-version": `{"version":99,"state_file":"state-000001.ckpt"}`,
		"traversal":     `{"version":1,"state_file":"../../etc/passwd"}`,
		"missing-state": `{"version":1,"state_file":"state-999999.ckpt"}`,
	} {
		dir, _ := saveOne(t)
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestSaveGC: after several saves only the manifest and its current
// state file remain — older generations and temp files are collected.
func TestSaveGC(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Save(sampleState(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir holds %v, want exactly manifest + one state file", names)
	}
	st, man, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 3 || st.SpentExecs != sampleState(3).SpentExecs {
		t.Fatalf("latest generation not current: seq=%d spent=%d", man.Seq, st.SpentExecs)
	}
}

// TestSaverResumesSequence: a new saver over an existing directory
// (the resume path) continues the sequence instead of reusing numbers.
func TestSaverResumesSequence(t *testing.T) {
	dir, _ := saveOne(t)
	s2, err := NewSaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != 1 {
		t.Fatalf("resumed saver seq = %d, want 1", s2.Seq())
	}
	if err := s2.Save(sampleState(2)); err != nil {
		t.Fatal(err)
	}
	if _, man, err := Load(dir); err != nil || man.Seq != 2 {
		t.Fatalf("seq after resume-save = %v (err %v), want 2", man, err)
	}
}

// TestFaultInjectionAtomicity is the kill-at-any-instant property: a
// save interrupted after any number of file operations leaves the
// directory loadable — the previous checkpoint intact, never a torn
// or half-visible new one.
func TestFaultInjectionAtomicity(t *testing.T) {
	// Count the operations a full save spends so the sweep covers every
	// interruption point (and one beyond, which must succeed).
	probe := t.TempDir()
	s, err := NewSaver(probe)
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFault(1 << 20)
	if err := s.Save(sampleState(2)); err != nil {
		t.Fatal(err)
	}
	totalOps := (1 << 20) - s.fault.budget
	if totalOps < 4 {
		t.Fatalf("probe counted only %d ops", totalOps)
	}

	for ops := 0; ops <= totalOps; ops++ {
		dir := t.TempDir()
		s, err := NewSaver(dir)
		if err != nil {
			t.Fatal(err)
		}
		first := sampleState(1)
		if err := s.Save(first); err != nil {
			t.Fatal(err)
		}
		s.InjectFault(ops)
		err = s.Save(sampleState(2))
		if ops < totalOps && !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("ops=%d: err = %v, want ErrInjectedFault", ops, err)
		}

		st, man, lerr := Load(dir)
		if lerr != nil {
			t.Fatalf("ops=%d: checkpoint unloadable after simulated kill: %v", ops, lerr)
		}
		switch man.Seq {
		case 1:
			if st.SpentExecs != first.SpentExecs {
				t.Fatalf("ops=%d: old checkpoint content changed", ops)
			}
		case 2:
			if st.SpentExecs != sampleState(2).SpentExecs {
				t.Fatalf("ops=%d: new checkpoint content wrong", ops)
			}
		default:
			t.Fatalf("ops=%d: unexpected seq %d", ops, man.Seq)
		}
	}

	// From an empty directory, an interrupted first save must leave
	// either no checkpoint or a complete one — never ErrCorrupt.
	for ops := 0; ops <= totalOps; ops++ {
		dir := t.TempDir()
		s, err := NewSaver(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.InjectFault(ops)
		_ = s.Save(sampleState(1))
		if _, _, err := Load(dir); err != nil && !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("ops=%d: first-save kill left %v, want complete or ErrNoCheckpoint", ops, err)
		}
	}
}

// TestSaveRefusesAfterTrip: once the injected kill fires, the saver
// stays dead — like the process it simulates.
func TestSaveRefusesAfterTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFault(1)
	if err := s.Save(sampleState(1)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Save(sampleState(2)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("post-trip save err = %v, want ErrInjectedFault", err)
	}
}

func TestNewSaverRejectsEmptyDir(t *testing.T) {
	if _, err := NewSaver(""); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v", err)
	}
}
