// Package checkpoint makes long fuzzing campaigns durable: it
// serializes a campaign pool's complete state — per-shard fuzzer
// queues and RNG cursors, the shared DiffStore and triage BucketStore,
// telemetry counters, and a hash of the campaign options — into a
// versioned on-disk snapshot that survives SIGKILL at any instant.
//
// Crash safety comes from the classic write-ahead protocol:
//
//  1. the state file is written to a temp name, fsynced, and
//     atomically renamed into place;
//  2. only then is MANIFEST.json (which names the state file and pins
//     its size and checksum) itself written via the same
//     temp+fsync+rename dance;
//  3. only after the new manifest is durable are older state files
//     garbage-collected.
//
// A kill between any two steps leaves either the previous checkpoint
// (manifest still points at the old, still-present state file) or the
// new one — never a torn mix. Load verifies the manifest's size and
// MurmurHash3 checksum against the state file before decoding, so
// truncation or bit rot is detected as ErrCorrupt rather than
// mis-loaded.
//
// The snapshot is taken at a pool synchronization barrier, which is
// the one moment a sharded campaign is single-threaded and its shard
// stores, shared stores, and counters are mutually consistent — the
// same reasoning that makes barriers the merge point (DESIGN §8.2)
// makes them the consistency point here.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"compdiff/internal/core"
	"compdiff/internal/evolve"
	"compdiff/internal/fuzz"
	"compdiff/internal/hash"
	"compdiff/internal/telemetry"
	"compdiff/internal/triage"
)

// Version is the snapshot schema version. Load rejects any other.
const Version = 1

const (
	manifestName = "MANIFEST.json"
	statePrefix  = "state-"
	stateSuffix  = ".ckpt"
)

var (
	// ErrNoCheckpoint reports that the directory holds no manifest —
	// callers typically fall back to a fresh start.
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
	// ErrCorrupt reports a manifest or state file that is unreadable,
	// truncated, or fails its checksum. Never returned for a merely
	// absent checkpoint.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated checkpoint")
	// ErrMismatch reports a checkpoint whose campaign options hash does
	// not match the resuming campaign — a user error (exit 2 in the
	// CLI), not a corruption.
	ErrMismatch = errors.New("checkpoint: campaign options do not match checkpoint")
	// ErrInjectedFault is returned by Save when a test-injected fault
	// budget runs out, simulating a SIGKILL mid-save.
	ErrInjectedFault = errors.New("checkpoint: injected fault (simulated kill)")
)

// State is one complete campaign snapshot. Every field round-trips
// through JSON exactly (slices in deterministic order, no maps), so
// save → load → save is byte-identical — the property the round-trip
// test pins.
type State struct {
	Version     int    `json:"version"`
	OptionsHash uint64 `json:"options_hash"`
	// SpentExecs is the cumulative per-shard execution budget consumed
	// across all Run calls so far.
	SpentExecs int64 `json:"spent_execs"`
	// PersistErrors is the pool-level count of DiffStore persistence
	// failures (satellite telemetry, carried across resume).
	PersistErrors int64        `json:"persist_errors,omitempty"`
	Shards        []ShardState `json:"shards"`
	// Diffs and DiffTotal mirror the shared pool DiffStore: unique
	// discrepancies in discovery order, with full outcomes so resumed
	// campaigns can still render reports.
	Diffs     []*core.StoredDiff `json:"diffs"`
	DiffTotal int                `json:"diff_total"`
	// Buckets and BucketTotal mirror the pool triage BucketStore.
	Buckets     []triage.BucketSnapshot `json:"buckets"`
	BucketTotal int                     `json:"bucket_total"`
	// Compile is set only by compile-oracle (program-corpus)
	// campaigns, which have no fuzzer shards: their durable state is a
	// corpus cursor plus per-shard counters and bucket skeletons.
	Compile *CompileCampaignState `json:"compile,omitempty"`
	// Evolve is set only by evolutionary campaigns: the current
	// population, generation, cumulative pass coverage, and counters.
	Evolve *EvolveCampaignState `json:"evolve,omitempty"`
}

// ShardState is one shard's slice of the snapshot.
type ShardState struct {
	Index int  `json:"index"`
	Dead  bool `json:"dead,omitempty"`
	// Fuzzer is the shard's complete fuzzer state (queue, coverage,
	// RNG cursors).
	Fuzzer *fuzz.State `json:"fuzzer"`
	// QueueSeen lists the queue-entry hashes this shard has already
	// cross-pollinated to its siblings, sorted.
	QueueSeen []uint64 `json:"queue_seen,omitempty"`
	DiffExecs int64    `json:"diff_execs"`
	// PersistErrors is the shard campaign's DiffStore error count.
	PersistErrors int64 `json:"persist_errors,omitempty"`
	// Diffs/DiffTotal are the shard-local store in skeleton form
	// (signatures and counts, no outcomes): enough to keep dedup
	// freshness and barrier recounts exact across a resume.
	Diffs     []*core.StoredDiff `json:"shard_diffs,omitempty"`
	DiffTotal int                `json:"shard_diff_total"`
	// Buckets/BucketTotal are the shard-local triage store, likewise
	// skeletal.
	Buckets     []triage.BucketSnapshot `json:"shard_buckets,omitempty"`
	BucketTotal int                     `json:"shard_bucket_total"`
	// Metrics is nil when the campaign ran without telemetry.
	Metrics *MetricsState `json:"metrics,omitempty"`
}

// CompileCampaignState is a compile-oracle campaign's slice of the
// snapshot: which prefix of the program corpus is fully processed and
// merged, plus the per-shard counters and bucket skeletons needed to
// make resume equivalent to an uninterrupted run.
type CompileCampaignState struct {
	// Cursor is the number of corpus programs processed and merged;
	// resume continues from this index.
	Cursor int `json:"cursor"`
	// CorpusLen pins the corpus size the cursor indexes into.
	CorpusLen int                 `json:"corpus_len"`
	Shards    []CompileShardState `json:"shards"`
}

// CompileShardState is one compile-oracle shard's counters plus its
// shard-local bucket store in skeleton form (no representative
// outcomes — enough for dedup freshness and exact recounts).
type CompileShardState struct {
	Index           int                     `json:"index"`
	Dead            bool                    `json:"dead,omitempty"`
	Programs        int64                   `json:"programs"`
	Accepted        int64                   `json:"accepted"`
	FrontendRejects int64                   `json:"frontend_rejects"`
	Findings        int64                   `json:"findings"`
	Buckets         []triage.BucketSnapshot `json:"shard_buckets,omitempty"`
	BucketTotal     int                     `json:"shard_bucket_total"`
}

// EvolveCampaignState is an evolutionary campaign's slice of the
// snapshot. Snapshots are taken only at generation barriers — the one
// moment the population, cumulative coverage, and bucket store are
// mutually consistent — so no RNG or mid-generation state appears
// here: every per-generation RNG stream is re-derived from
// (seed, generation), and a kill mid-generation resumes by
// re-evaluating the checkpointed population deterministically.
type EvolveCampaignState struct {
	// Generation is the next generation to evaluate.
	Generation int `json:"generation"`
	// Genomes is the current population in index order.
	Genomes []evolve.Genome `json:"genomes"`
	// CumBits is the cumulative per-implementation fired-rewrite
	// bitmap (suite order), the base NewBits fitness is scored against.
	CumBits []uint32 `json:"cum_bits"`
	// Counters, cumulative across the campaign.
	Programs        int64 `json:"programs"`
	FrontendRejects int64 `json:"frontend_rejects"`
	Findings        int64 `json:"findings"`
	// BestFitness and MeanFitness are the last evaluated generation's
	// fitness telemetry, so a resumed-and-complete campaign reprints
	// the same summary as the run that wrote the checkpoint.
	BestFitness float64 `json:"best_fitness,omitempty"`
	MeanFitness float64 `json:"mean_fitness,omitempty"`
}

// MetricsState is one shard's telemetry counters.
type MetricsState struct {
	Execs     int64                       `json:"execs"`
	DiffExecs int64                       `json:"diff_execs"`
	Classes   [telemetry.NumClasses]int64 `json:"classes"`
	Impls     []telemetry.ImplSummary     `json:"impls,omitempty"`
}

// Manifest points at the current state file and pins its integrity.
type Manifest struct {
	Version     int    `json:"version"`
	OptionsHash uint64 `json:"options_hash"`
	Seq         int    `json:"seq"`
	StateFile   string `json:"state_file"`
	StateSize   int64  `json:"state_size"`
	// StateSum is the MurmurHash3-128 of the state file bytes, hex.
	StateSum   string `json:"state_sum"`
	SpentExecs int64  `json:"spent_execs"`
	Shards     int    `json:"shards"`
}

// Exists reports whether dir holds a checkpoint manifest (readable or
// not) — the guard a fresh campaign uses to refuse clobbering one.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// fault is the test seam that simulates a SIGKILL mid-save: each file
// operation spends one unit of budget (writes may also stop halfway),
// and once the budget is gone every subsequent operation fails — as
// after a real kill, nothing later in the protocol runs.
type fault struct {
	budget  int
	tripped bool
}

// Saver writes snapshots into one directory with increasing sequence
// numbers. Not safe for concurrent use; the pool calls it only at
// barriers.
type Saver struct {
	dir   string
	seq   int
	fault *fault
}

// NewSaver prepares dir for checkpointing. If a manifest already
// exists, the sequence continues after it (the resume path); callers
// that want to refuse an existing checkpoint should consult Exists
// first.
func NewSaver(dir string) (*Saver, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Saver{dir: dir}
	if man, err := loadManifest(dir); err == nil {
		s.seq = man.Seq
	}
	return s, nil
}

// Seq returns the sequence number of the last successful Save (or of
// the manifest the saver resumed after).
func (s *Saver) Seq() int { return s.seq }

// InjectFault arms the test seam: the next Save fails — leaving
// whatever partial files a kill would leave — once ops file
// operations have been spent. All Saves after the trip fail too.
func (s *Saver) InjectFault(ops int) { s.fault = &fault{budget: ops} }

// op spends one unit of fault budget; once spent, the saver behaves
// as a killed process: nothing further succeeds.
func (s *Saver) op() error {
	if s.fault == nil {
		return nil
	}
	if s.fault.tripped || s.fault.budget <= 0 {
		s.fault.tripped = true
		return ErrInjectedFault
	}
	s.fault.budget--
	return nil
}

// Save writes st as the next checkpoint. On any error (including an
// injected kill) the previous checkpoint remains loadable; the new
// one becomes visible only when its manifest rename completes.
func (s *Saver) Save(st *State) error {
	st.Version = Version
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	seq := s.seq + 1
	stateFile := fmt.Sprintf("%s%06d%s", statePrefix, seq, stateSuffix)
	if err := s.writeDurable(stateFile, data); err != nil {
		return err
	}
	man := Manifest{
		Version:     Version,
		OptionsHash: st.OptionsHash,
		Seq:         seq,
		StateFile:   stateFile,
		StateSize:   int64(len(data)),
		StateSum:    sumHex(data),
		SpentExecs:  st.SpentExecs,
		Shards:      len(st.Shards),
	}
	mdata, err := json.Marshal(&man)
	if err != nil {
		return fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	if err := s.writeDurable(manifestName, mdata); err != nil {
		return err
	}
	s.seq = seq
	s.gc(stateFile)
	return nil
}

// writeDurable is the torn-write-free primitive: write name.tmp, fsync
// it, rename over name, fsync the directory. A kill at any point
// leaves either the old name intact or the new content fully in
// place; the .tmp leftovers are ignored by Load and collected by gc.
func (s *Saver) writeDurable(name string, data []byte) error {
	tmp := filepath.Join(s.dir, name+".tmp")
	final := filepath.Join(s.dir, name)
	if err := s.op(); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if ferr := s.op(); ferr != nil {
		// Simulated kill mid-write: leave a torn temp file behind,
		// exactly what a real kill during write(2) can produce.
		_, _ = f.Write(data[:len(data)/2])
		f.Close()
		return ferr
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if ferr := s.op(); ferr != nil {
		f.Close()
		return ferr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.op(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.op(); err != nil {
		return err
	}
	syncDir(s.dir)
	return nil
}

// gc removes state files other than the one the durable manifest now
// references, plus stale temp files. Failures are ignored: leftovers
// are harmless and re-collected by the next successful save.
func (s *Saver) gc(keep string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == keep || name == manifestName {
			continue
		}
		stale := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, statePrefix) && strings.HasSuffix(name, stateSuffix))
		if !stale {
			continue
		}
		if s.op() != nil {
			return
		}
		_ = os.Remove(filepath.Join(s.dir, name))
	}
}

// syncDir fsyncs a directory so a completed rename is durable. Best
// effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func sumHex(data []byte) string {
	d := hash.New128(0x5afe)
	d.Write(data)
	h1, h2 := d.Sum128()
	return fmt.Sprintf("%016x%016x", h1, h2)
}

func loadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoCheckpoint
		}
		return nil, fmt.Errorf("%w: reading manifest: %v", ErrCorrupt, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if man.Version != Version {
		return nil, fmt.Errorf("%w: manifest version %d, want %d", ErrCorrupt, man.Version, Version)
	}
	if man.StateFile == "" || man.StateFile != filepath.Base(man.StateFile) {
		return nil, fmt.Errorf("%w: manifest names invalid state file %q", ErrCorrupt, man.StateFile)
	}
	return &man, nil
}

// Load reads and verifies the current checkpoint in dir. It returns
// ErrNoCheckpoint when no manifest exists, and ErrCorrupt (wrapped
// with detail) when the manifest or state file is damaged — never a
// partially-decoded state.
func Load(dir string) (*State, *Manifest, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, man.StateFile))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: state file %s: %v", ErrCorrupt, man.StateFile, err)
	}
	if int64(len(data)) != man.StateSize {
		return nil, nil, fmt.Errorf("%w: state file %s is %d bytes, manifest pins %d",
			ErrCorrupt, man.StateFile, len(data), man.StateSize)
	}
	if sum := sumHex(data); sum != man.StateSum {
		return nil, nil, fmt.Errorf("%w: state file %s checksum %s, manifest pins %s",
			ErrCorrupt, man.StateFile, sum, man.StateSum)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, nil, fmt.Errorf("%w: state decode: %v", ErrCorrupt, err)
	}
	if st.Version != man.Version || st.OptionsHash != man.OptionsHash || len(st.Shards) != man.Shards {
		return nil, nil, fmt.Errorf("%w: state/manifest disagree", ErrCorrupt)
	}
	return &st, man, nil
}
