package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWorkerLayoutShape(t *testing.T) {
	d := WorkerLayout("/farm", 7)
	if d.Root != filepath.Join("/farm", "workers", "worker-007") {
		t.Fatalf("root = %s", d.Root)
	}
	if d.Checkpoint != filepath.Join(d.Root, "checkpoint") ||
		d.Stats != filepath.Join(d.Root, "stats") ||
		d.Heartbeat != filepath.Join(d.Stats, "STATUS.json") ||
		d.Log != filepath.Join(d.Root, "worker.log") {
		t.Fatalf("layout = %+v", d)
	}
	// Diff is the worker root: the DiffStore places evidence under
	// <Diff>/diffs/ itself.
	if d.Diff != d.Root {
		t.Fatalf("Diff = %s, want worker root %s", d.Diff, d.Root)
	}
}

func TestEnsureWorkerAndList(t *testing.T) {
	farm := t.TempDir()

	// An empty farm lists no workers and is not an error.
	if ws, err := ListWorkers(farm); err != nil || ws != nil {
		t.Fatalf("empty farm: workers=%v err=%v", ws, err)
	}

	// Create out of order; idempotent re-create must not fail.
	for _, i := range []int{2, 0, 10, 2} {
		d, err := EnsureWorker(farm, i)
		if err != nil {
			t.Fatalf("EnsureWorker(%d): %v", i, err)
		}
		for _, dir := range []string{d.Root, d.Checkpoint, d.Stats} {
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				t.Fatalf("EnsureWorker(%d) did not create %s: %v", i, dir, err)
			}
		}
	}

	// Stray files and non-worker directories are ignored.
	if err := os.WriteFile(filepath.Join(farm, "workers", "worker-001"), []byte("a file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(farm, "workers", "notes"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(farm, "workers", "worker-bad"), 0o755); err != nil {
		t.Fatal(err)
	}

	ws, err := ListWorkers(farm)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 2, 10}; !reflect.DeepEqual(ws, want) {
		t.Fatalf("ListWorkers = %v, want %v", ws, want)
	}
}

// TestReadManifestWatermark: the supervisor's cheap post-exit read
// must surface the same manifest Load validates, and report
// ErrNoCheckpoint for a virgin worker directory.
func TestReadManifestWatermark(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("ReadManifest on empty dir succeeded")
	}

	sv, err := NewSaver(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := &State{Version: Version, OptionsHash: 0xabcd, SpentExecs: 1234}
	if err := sv.Save(st); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpentExecs != 1234 || m.OptionsHash != 0xabcd || m.Seq != 1 {
		t.Fatalf("manifest = %+v", m)
	}
}
