package sanitizer

import (
	"strings"
	"testing"

	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

func runner(t *testing.T, src string, tool Tool) *Runner {
	t.Helper()
	info := sema.MustCheck(parser.MustParse(src))
	r, err := NewRunner(info, tool)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func reportKind(t *testing.T, src string, tool Tool) string {
	t.Helper()
	_, rep := runner(t, src, tool).Run(nil)
	if rep == nil {
		return ""
	}
	return rep.Kind
}

// ---------------------------------------------------------------------------
// ASan

func TestASanHeapOverflowRead(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    printf("%d\n", p[9]);
    free(p);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "heap-buffer-overflow" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanHeapOverflowWrite(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    p[8] = 1;
    free(p);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "heap-buffer-overflow" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanHeapUnderwrite(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    p[-1] = 1;
    free(p);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "heap-buffer-overflow" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanUseAfterFree(t *testing.T) {
	src := `
int main() {
    int* p = (int*)malloc(16L);
    free(p);
    printf("%d\n", p[0]);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "heap-use-after-free" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanDoubleFree(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    free(p);
    free(p);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "double-free" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanBadFree(t *testing.T) {
	src := `
int main() {
    char buf[8];
    buf[0] = 0;
    free(buf);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "bad-free" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanStackOverflowRead(t *testing.T) {
	src := `
int main() {
    char a[4];
    a[0] = 1;
    printf("%d\n", a[6]);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "stack-buffer-overflow" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanMemcpyOverlap(t *testing.T) {
	src := `
int main() {
    char buf[16];
    memset(buf, 65, 16L);
    memcpy(buf + 2, buf, 8L);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "memcpy-param-overlap" {
		t.Fatalf("kind = %q", k)
	}
}

func TestASanBlindToIntraObjectOverflow(t *testing.T) {
	// Overflow from one struct field into the next stays inside the
	// object: ASan's classic blind spot, where CompDiff still catches
	// the divergence through layout-dependent corruption.
	src := `
struct Two { char buf[4]; int guard; };
int main() {
    struct Two s;
    s.guard = 7;
    for (int i = 0; i < 6; i++) { s.buf[i] = 1; }
    printf("%d\n", s.guard);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "" {
		t.Fatalf("ASan should miss intra-object overflow, got %q", k)
	}
}

func TestASanCleanProgramNoReport(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    for (int i = 0; i < 8; i++) { p[i] = (char)i; }
    int s = 0;
    for (int i = 0; i < 8; i++) { s += p[i]; }
    free(p);
    printf("%d\n", s);
    return 0;
}`
	if k := reportKind(t, src, ASan); k != "" {
		t.Fatalf("false positive: %q", k)
	}
}

// ---------------------------------------------------------------------------
// UBSan

func TestUBSanSignedOverflow(t *testing.T) {
	src := `
int main() {
    int x = 2147483647;
    printf("%d\n", x + 1);
    return 0;
}`
	if k := reportKind(t, src, UBSan); k != "signed-integer-overflow" {
		t.Fatalf("kind = %q", k)
	}
}

func TestUBSanDivByZero(t *testing.T) {
	src := `
int main() {
    int d = 0;
    printf("%d\n", 5 / d);
    return 0;
}`
	if k := reportKind(t, src, UBSan); k != "division-by-zero" {
		t.Fatalf("kind = %q", k)
	}
}

func TestUBSanShiftOOB(t *testing.T) {
	src := `
int main() {
    int s = 40;
    printf("%d\n", 1 << s);
    return 0;
}`
	if k := reportKind(t, src, UBSan); k != "shift-out-of-bounds" {
		t.Fatalf("kind = %q", k)
	}
}

func TestUBSanNullDeref(t *testing.T) {
	src := `
int main() {
    int* p = 0;
    printf("%d\n", *p);
    return 0;
}`
	if k := reportKind(t, src, UBSan); k != "null-pointer-dereference" {
		t.Fatalf("kind = %q", k)
	}
}

func TestUBSanUnsignedWrapNotReported(t *testing.T) {
	src := `
int main() {
    unsigned int x = 4294967295U;
    printf("%u\n", x + 1U);
    return 0;
}`
	if k := reportKind(t, src, UBSan); k != "" {
		t.Fatalf("false positive: %q", k)
	}
}

func TestUBSanMissesMemoryErrors(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(8L);
    p[9] = 1;
    free(p);
    return 0;
}`
	if k := reportKind(t, src, UBSan); k != "" {
		t.Fatalf("UBSan should not see heap overflow, got %q", k)
	}
}

// ---------------------------------------------------------------------------
// MSan

func TestMSanUninitBranch(t *testing.T) {
	src := `
int main() {
    int x;
    if (x > 0) { printf("pos\n"); } else { printf("neg\n"); }
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "use-of-uninitialized-value" {
		t.Fatalf("kind = %q", k)
	}
}

func TestMSanUninitHeapBranch(t *testing.T) {
	src := `
int main() {
    int* p = (int*)malloc(16L);
    if (p[2] == 0) { printf("zero\n"); }
    free(p);
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "use-of-uninitialized-value" {
		t.Fatalf("kind = %q", k)
	}
}

func TestMSanBlindToPrintedUninit(t *testing.T) {
	// The paper's Listing 4 pattern: the uninitialized value is only
	// printed, never branched on — the real MSan stays silent here.
	src := `
int main() {
    int l;
    printf("%d\n", l);
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "" {
		t.Fatalf("MSan should miss print-only uninit use, got %q", k)
	}
}

func TestMSanInitializedCleanRun(t *testing.T) {
	src := `
int main() {
    int x = 3;
    int a[4];
    memset((char*)a, 0, 16L);
    if (x > 0 && a[1] == 0) { printf("ok\n"); }
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "" {
		t.Fatalf("false positive: %q", k)
	}
}

func TestMSanTaintFlowsThroughCopy(t *testing.T) {
	src := `
int main() {
    int x;
    int y = x;
    int z = y + 1;
    if (z > 0) { printf("pos\n"); }
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "use-of-uninitialized-value" {
		t.Fatalf("kind = %q", k)
	}
}

func TestMSanParamsAreInitialized(t *testing.T) {
	src := `
int f(int v) {
    if (v > 0) { return 1; }
    return 0;
}
int main() {
    printf("%d\n", f(3));
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "" {
		t.Fatalf("false positive: %q", k)
	}
}

func TestMSanMissingArgIsUninit(t *testing.T) {
	// CWE-685: the missing parameter reads uninitialized frame memory.
	src := `
int f(int a, int b) {
    if (b > 0) { return 1; }
    return 0;
}
int main() {
    printf("%d\n", f(3));
    return 0;
}`
	if k := reportKind(t, src, MSan); k != "use-of-uninitialized-value" {
		t.Fatalf("kind = %q", k)
	}
}

// ---------------------------------------------------------------------------
// Cross-tool behaviour

func TestCheckAllScopes(t *testing.T) {
	src := `
int main() {
    char* p = (char*)malloc(4L);
    p[5] = 1;
    free(p);
    return 0;
}`
	info := sema.MustCheck(parser.MustParse(src))
	got, err := CheckAll(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got[ASan] {
		t.Error("ASan should detect")
	}
	if got[UBSan] {
		t.Error("UBSan should not detect")
	}
}

func TestReportIncludesLocation(t *testing.T) {
	src := `int main() {
    int d = 0;
    int r = 7 / d;
    return r;
}`
	_, rep := runner(t, src, UBSan).Run(nil)
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Line != 3 {
		t.Errorf("line = %d, want 3", rep.Line)
	}
	if rep.Func != "main" {
		t.Errorf("func = %q", rep.Func)
	}
	if !strings.Contains(rep.String(), "ubsan") {
		t.Errorf("String() = %q", rep.String())
	}
}
