// Package sanitizer provides the dynamic-analysis baselines CompDiff
// is compared against: AddressSanitizer, UndefinedBehaviorSanitizer
// and MemorySanitizer analogs. Each tool compiles the target with a
// sanitizer-appropriate configuration and executes it under the VM's
// corresponding instrumentation mode, reproducing the real tools'
// scopes and blind spots (Table 1 of the paper):
//
//   - ASan: heap/stack buffer overflows, use-after-free, double free,
//     bad free, memcpy overlap. Blind to intra-object overflow.
//   - UBSan: signed overflow, division by zero, out-of-range shifts,
//     null dereference.
//   - MSan: uses of uninitialized memory — but only ones that decide a
//     branch (or feed an address/divisor), matching the real tool's
//     false-positive-avoiding design that the paper's Listing 4
//     exploits. Values merely copied or printed are not reported.
package sanitizer

import (
	"compdiff/internal/compiler"
	"compdiff/internal/ir"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

// Tool identifies a sanitizer.
type Tool int

const (
	ASan Tool = iota
	UBSan
	MSan
	NumTools
)

// String returns the conventional tool name.
func (t Tool) String() string {
	switch t {
	case ASan:
		return "ASan"
	case UBSan:
		return "UBSan"
	case MSan:
		return "MSan"
	}
	return "?"
}

// AllTools lists the three sanitizers.
func AllTools() []Tool { return []Tool{ASan, UBSan, MSan} }

// config returns the compiler configuration used for this tool's
// binary: sanitizers are conventionally run at clang -O1, with ASan
// additionally changing the frame layout (redzones).
func (t Tool) config() compiler.Config {
	cfg := compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Sanitize: true}
	if t == ASan {
		cfg.ASan = true
	}
	return cfg
}

func (t Tool) mode() vm.SanMode {
	switch t {
	case ASan:
		return vm.SanASan
	case UBSan:
		return vm.SanUBSan
	default:
		return vm.SanMSan
	}
}

// Runner owns the sanitizer-instrumented machine for one program.
type Runner struct {
	tool Tool
	m    *vm.Machine
}

// NewRunner compiles the checked program for the tool and prepares an
// executor. Compilation errors are impossible for programs that
// compiled under a normal configuration; they indicate repo bugs.
func NewRunner(info *sema.Info, tool Tool) (*Runner, error) {
	bin, err := compiler.Compile(info, tool.config())
	if err != nil {
		return nil, err
	}
	return &Runner{tool: tool, m: vm.New(bin, vm.Options{San: tool.mode()})}, nil
}

// Program exposes the compiled sanitizer binary.
func (r *Runner) Program() *ir.Program { return r.m.Program() }

// Run executes the instrumented binary on input. The report is non-nil
// iff the sanitizer fired.
func (r *Runner) Run(input []byte) (*vm.Result, *vm.SanReport) {
	res := r.m.Run(input)
	return res, res.San
}

// Detects reports whether the tool flags the program on input, either
// via an explicit sanitizer report or — as with real fuzzing setups —
// via a crash of the instrumented binary.
func (r *Runner) Detects(input []byte) bool {
	res, rep := r.Run(input)
	return rep != nil || res.Exit == vm.SigSegv || res.Exit == vm.SigFpe || res.Exit == vm.Abort
}

// CheckAll runs every sanitizer on the program/input pair and returns
// the per-tool detection results.
func CheckAll(info *sema.Info, input []byte) (map[Tool]bool, error) {
	out := map[Tool]bool{}
	for _, tool := range AllTools() {
		r, err := NewRunner(info, tool)
		if err != nil {
			return nil, err
		}
		out[tool] = r.Detects(input)
	}
	return out, nil
}
