package ir

// Profile is the execution personality a compiler implementation bakes
// into its binaries: the set of legal choices that are only observable
// when the program executes undefined behaviour. The VM consults it at
// run time; two binaries of a UB-free program behave identically under
// any two profiles.
//
// A Profile is immutable after compilation — it carries configuration,
// never counters — so concurrent VM workers may read one freely.
type Profile struct {
	// Key seeds incidental values: the initial memory fill pattern
	// (what uninitialized stack/heap bytes contain) and poison values.
	Key uint64

	// StackDown allocates call frames from high addresses to low.
	StackDown bool

	// HeapHeader is the allocator's per-chunk bookkeeping size, which
	// shifts heap object addresses and out-of-bounds victims.
	HeapHeader int64

	// HeapReuse recycles freed chunks immediately (LIFO); otherwise
	// freed memory is never handed out again within a run.
	HeapReuse bool

	// FreeErrAbort aborts on double/invalid free (glibc-style check);
	// otherwise the allocator state is silently corrupted.
	FreeErrAbort bool

	// DivZeroTrap raises SIGFPE on integer division by zero; otherwise
	// the result is a poison value (the optimizer assumed it away).
	DivZeroTrap bool

	// MinIntDivTrap raises SIGFPE on INT_MIN / -1; otherwise it wraps.
	MinIntDivTrap bool

	// ShiftMask masks out-of-range shift counts by width-1 (x86
	// semantics); otherwise such shifts produce zero.
	ShiftMask bool

	// MemcpyBackward copies overlapping memcpy regions from the end.
	MemcpyBackward bool

	// PowViaExp2 evaluates pow(x, y) as exp2(y*log2(x)) — the faster
	// libcall substitution some optimizers make, with slightly
	// different rounding (the paper's floating-point imprecision
	// category).
	PowViaExp2 bool
}
