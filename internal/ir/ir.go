// Package ir defines the bytecode intermediate representation that the
// MiniC compilers lower to and the VM executes. It is a stack machine:
// instructions push and pop 64-bit words from an operand stack and
// address a flat byte memory (rodata, globals, stack, heap segments).
//
// Compiler implementations differ in the *code they emit* for the same
// source (argument evaluation order, widening, UB-assuming folds,
// frame layouts) and in the execution profile attached to the binary
// (allocator personality, fill patterns, trap policies). Both together
// are what make unstable code observable, mirroring how real gcc/clang
// binaries diverge.
package ir

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode.
type Op uint8

const (
	Nop Op = iota

	// Stack and constants.
	ConstI     // push Imm
	ConstF     // push float64 FImm (as bits)
	StrAddr    // push rodataBase + Imm
	FrameAddr  // push frameBase + Imm
	GlobalAddr // push globalsBase + Imm
	Dup        // duplicate top
	Pop        // drop top
	Swap       // swap top two

	// Memory. A = width in bytes (1,2,4,8); B = 1 if sign-extending load.
	Load  // pop addr; push mem[addr]
	Store // pop value, pop addr; mem[addr] = value

	// Integer arithmetic. A = TypeCode of the operation.
	// Div/Mod may trap or produce poison per the execution profile when
	// the divisor is zero (or INT_MIN/-1 for signed), both UB in C.
	Add
	Sub
	Mul
	Div
	Mod
	Neg
	BitNot
	BitAnd
	BitOr
	BitXor
	Shl // B flags: shift-count handling is profile-dependent when OOB (UB)
	Shr

	// Comparisons: push 1 or 0. A = TypeCode. PtrCmp relational
	// comparisons between unrelated objects are UB; the observable
	// result is whatever the addresses happen to be under the binary's
	// layout (paper Listing 2).
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe

	// Conversions. A = from TypeCode, B = to TypeCode.
	Conv

	// Floating point. A = TypeCode (F32 or F64).
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FMulAdd // pop c, b, a; push fused a*b+c (FP contraction divergence)

	// Control flow. Imm = target pc.
	Jmp
	Jz  // pop; jump if zero
	Jnz // pop; jump if nonzero

	// Calls. Imm = function index (Call) or builtin id (CallB);
	// A = number of argument words on the stack; B = 1 if the arguments
	// were evaluated (and pushed) right-to-left.
	Call
	CallB
	Ret     // A = 1 if a return value is on the stack
	Unreach // executing this is a bug in the compiler; traps

	// Temporary-value stack, used by lowering for assignment
	// expressions that must both store and yield their value.
	TSet // pop operand stack -> push temp stack
	TGet // push a copy of the temp stack top
	TPop // discard the temp stack top

	// Edge is coverage instrumentation (fuzz binaries only).
	// Imm = edge id.
	Edge

	// Poison pushes an implementation-determined garbage value; the
	// optimizers emit it where they exploit UB to fold computations.
	// Imm seeds the value; the profile's personality perturbs it.
	Poison

	// Superinstructions. The compiler's peephole pass fuses the
	// highest-frequency fallthrough pairs of the corpus opcode-pair
	// histogram (`report -opcode-pairs`) into single opcodes; each is
	// defined as exactly the pair it replaces, executed in one step.
	// Every implementation runs the same pass, so fused binaries stay
	// pairwise comparable.
	LdLoc  // FrameAddr+Load: push mem[frameBase+Imm] (A = width, B = load mode)
	CmpImm // ConstI+Cmp*: pop a, push a <op> Imm (A = TypeCode, B = Op-CmpEq; integer only)
	AluImm // ConstI+{Add..Mul,BitAnd..BitXor}: pop a, push a <op> Imm (A = TypeCode, B = Op-Add)
)

// NumOps is the number of defined opcodes — the dimension of
// opcode-indexed tables (the VM's pair-frequency profiler sizes its
// histogram with it).
const NumOps = int(AluImm) + 1

var opNames = [...]string{
	Nop: "nop", ConstI: "consti", ConstF: "constf", StrAddr: "straddr",
	FrameAddr: "frameaddr", GlobalAddr: "globaladdr", Dup: "dup",
	Pop: "pop", Swap: "swap", Load: "load", Store: "store",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Neg: "neg", BitNot: "bitnot", BitAnd: "bitand", BitOr: "bitor",
	BitXor: "bitxor", Shl: "shl", Shr: "shr",
	CmpEq: "cmpeq", CmpNe: "cmpne", CmpLt: "cmplt", CmpLe: "cmple",
	CmpGt: "cmpgt", CmpGe: "cmpge", Conv: "conv",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	FMulAdd: "fmuladd", Jmp: "jmp", Jz: "jz", Jnz: "jnz",
	Call: "call", CallB: "callb", Ret: "ret", Unreach: "unreach",
	TSet: "tset", TGet: "tget", TPop: "tpop",
	Edge: "edge", Poison: "poison",
	LdLoc: "ldloc", CmpImm: "cmpimm", AluImm: "aluimm",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// TypeCode identifies the machine type an instruction operates on.
type TypeCode uint8

const (
	I8 TypeCode = iota
	U8
	I32
	U32
	I64
	U64
	F32
	F64
)

var typeCodeNames = [...]string{"i8", "u8", "i32", "u32", "i64", "u64", "f32", "f64"}

// String returns the code name.
func (t TypeCode) String() string {
	if int(t) < len(typeCodeNames) {
		return typeCodeNames[t]
	}
	return fmt.Sprintf("tc(%d)", uint8(t))
}

// Signed reports whether the code is a signed integer type.
func (t TypeCode) Signed() bool { return t == I8 || t == I32 || t == I64 }

// Bits returns the width in bits of an integer code (0 for floats).
func (t TypeCode) Bits() int {
	switch t {
	case I8, U8:
		return 8
	case I32, U32:
		return 32
	case I64, U64:
		return 64
	}
	return 0
}

// IsFloat reports whether the code is a floating-point type.
func (t TypeCode) IsFloat() bool { return t == F32 || t == F64 }

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A    uint8   // TypeCode, width, or argument count, per opcode
	B    uint8   // flags: signedness, arg order, per opcode
	Imm  int64   // immediate: constant, offset, target, id
	FImm float64 // float constant
	Line int32   // source line, for sanitizer reports and triage
}

// String disassembles one instruction.
func (i Instr) String() string {
	switch i.Op {
	case ConstI, StrAddr, FrameAddr, GlobalAddr, Jmp, Jz, Jnz, Edge, Poison:
		return fmt.Sprintf("%-10s %d", i.Op, i.Imm)
	case ConstF:
		return fmt.Sprintf("%-10s %g", i.Op, i.FImm)
	case Load:
		s := "u"
		if i.B != 0 {
			s = "s"
		}
		return fmt.Sprintf("%-10s w%d %s", i.Op, i.A, s)
	case Store:
		return fmt.Sprintf("%-10s w%d", i.Op, i.A)
	case Add, Sub, Mul, Div, Mod, Neg, BitNot, BitAnd, BitOr, BitXor,
		Shl, Shr, CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
		FAdd, FSub, FMul, FDiv, FNeg, FMulAdd:
		return fmt.Sprintf("%-10s %s", i.Op, TypeCode(i.A))
	case Conv:
		return fmt.Sprintf("%-10s %s->%s", i.Op, TypeCode(i.A), TypeCode(i.B))
	case Call:
		return fmt.Sprintf("%-10s fn%d nargs=%d rtl=%d", i.Op, i.Imm, i.A, i.B)
	case CallB:
		return fmt.Sprintf("%-10s b%d nargs=%d rtl=%d", i.Op, i.Imm, i.A, i.B)
	case Ret:
		return fmt.Sprintf("%-10s vals=%d", i.Op, i.A)
	default:
		return i.Op.String()
	}
}

// Slot describes one variable's location inside a frame; sanitizer
// execution modes use slots to poison redzones (ASan) and to mark
// locals uninitialized on entry (MSan).
type Slot struct {
	Name  string
	Off   int64
	Size  int64
	Param bool
}

// Func is a compiled function.
type Func struct {
	Name      string
	FrameSize int64      // bytes of stack frame
	ParamOff  []int64    // frame offset of each declared parameter
	ParamKind []TypeCode // machine type of each declared parameter
	Slots     []Slot
	Code      []Instr
}

// NParams returns the declared parameter count.
func (f *Func) NParams() int { return len(f.ParamOff) }

// GlobalInit records initialized global data copied into the globals
// segment at startup (C zero-initializes the rest).
type GlobalInit struct {
	Offset int64
	Data   []byte
}

// Program is a compiled binary: code plus its data segments and the
// description of the compiler implementation that produced it.
type Program struct {
	Funcs      []*Func
	FuncIndex  map[string]int
	Rodata     []byte
	GlobalsLen int64
	GlobalInit []GlobalInit
	Main       int // index of main in Funcs

	NumEdges int     // coverage instrumentation points (0 if none)
	Compiler string  // human-readable compiler implementation name
	Profile  Profile // execution personality baked in by the compiler
}

// Disasm renders the whole program for debugging.
func (p *Program) Disasm() string {
	var b strings.Builder
	for fi, f := range p.Funcs {
		fmt.Fprintf(&b, "func %d %s (params=%d frame=%d)\n", fi, f.Name, f.NParams(), f.FrameSize)
		for pc, in := range f.Code {
			fmt.Fprintf(&b, "  %4d  %s\n", pc, in)
		}
	}
	return b.String()
}
