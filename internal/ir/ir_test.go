package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanon(t *testing.T) {
	cases := []struct {
		tc   TypeCode
		in   uint64
		want uint64
	}{
		{I8, 0xff, 0xffffffffffffffff}, // -1
		{I8, 0x7f, 0x7f},
		{U8, 0x1ff, 0xff},
		{I32, 0xffffffff, 0xffffffffffffffff}, // -1
		{I32, 0x80000000, 0xffffffff80000000}, // INT_MIN
		{U32, 0x1_0000_0001, 1},
		{I64, 0xdeadbeefdeadbeef, 0xdeadbeefdeadbeef},
	}
	for _, c := range cases {
		if got := Canon(c.tc, c.in); got != c.want {
			t.Errorf("Canon(%s, %#x) = %#x, want %#x", c.tc, c.in, got, c.want)
		}
	}
}

func TestCanonIdempotent(t *testing.T) {
	f := func(v uint64, k uint8) bool {
		tc := TypeCode(k % 6)
		once := Canon(tc, v)
		return Canon(tc, once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntBinOKDefined(t *testing.T) {
	check := func(op Op, tc TypeCode, a, b, want uint64) {
		t.Helper()
		got, ok := IntBinOK(op, tc, a, b)
		if !ok {
			t.Errorf("%s %s(%d,%d): refused, want %d", op, tc, int64(a), int64(b), int64(want))
			return
		}
		if got != want {
			t.Errorf("%s %s(%d,%d) = %d, want %d", op, tc, int64(a), int64(b), int64(got), int64(want))
		}
	}
	check(Add, I32, 3, 4, 7)
	check(Sub, I32, 3, 4, Canon(I32, ^uint64(0)))
	check(Mul, I32, Canon(I32, uint64(1<<15)), 4, 1<<17)
	check(Div, I32, Canon(I32, ^uint64(6)), 2, Canon(I32, ^uint64(2))) // -7/2 = -3
	check(Mod, I32, Canon(I32, ^uint64(6)), 2, Canon(I32, ^uint64(0))) // -7%2 = -1
	check(Div, U32, 0xfffffffe, 2, 0x7fffffff)
	check(Shl, U32, 1, 31, 0x80000000)
	check(Shr, I32, Canon(I32, uint64(1<<31)), 31, Canon(I32, ^uint64(0)))
	check(BitXor, U8, 0xf0, 0x0f, 0xff)
}

func TestIntBinOKRefusesUB(t *testing.T) {
	refuse := func(op Op, tc TypeCode, a, b uint64) {
		t.Helper()
		if _, ok := IntBinOK(op, tc, a, b); ok {
			t.Errorf("%s %s(%#x,%#x): folded UB", op, tc, a, b)
		}
	}
	refuse(Add, I32, Canon(I32, 0x7fffffff), 1)    // signed overflow
	refuse(Sub, I32, Canon(I32, uint64(1)<<31), 1) // INT_MIN - 1
	refuse(Mul, I32, Canon(I32, 1<<20), Canon(I32, 1<<20))
	refuse(Div, I32, 7, 0)                                              // div by zero
	refuse(Div, I32, Canon(I32, uint64(1)<<31), Canon(I32, ^uint64(0))) // INT_MIN / -1
	refuse(Mod, U32, 7, 0)
	refuse(Shl, I32, 1, 32)                     // count out of range
	refuse(Shl, I32, Canon(I32, ^uint64(0)), 1) // shifting a negative
	refuse(Shr, U32, 1, 99)
	refuse(Add, I64, uint64(math.MaxInt64), 1)
	refuse(Mul, I64, uint64(math.MaxInt64/2+1), 2)
}

func TestIntCmpSignedness(t *testing.T) {
	minusOne := Canon(I32, ^uint64(0))
	if !IntCmp(CmpLt, I32, minusOne, 0) {
		t.Error("signed: -1 < 0 should hold")
	}
	if IntCmp(CmpLt, U32, Canon(U32, minusOne), 0) {
		t.Error("unsigned: 0xffffffff < 0 should not hold")
	}
	if !IntCmp(CmpGe, U64, 5, 5) || !IntCmp(CmpEq, I8, 1, 1) {
		t.Error("basic comparisons broken")
	}
}

func TestConvWordIntWidths(t *testing.T) {
	// long -> char truncates then sign-extends.
	if got := ConvWord(I64, I8, 0x1ff); got != Canon(I8, 0xff) {
		t.Errorf("I64->I8(0x1ff) = %#x", got)
	}
	// char -> unsigned long zero-extends from the canonical value.
	if got := ConvWord(I8, U64, Canon(I8, 0xff)); got != ^uint64(0) {
		t.Errorf("I8->U64(-1) = %#x", got)
	}
	// unsigned widening never sign-extends.
	if got := ConvWord(U8, I32, 0xff); got != 0xff {
		t.Errorf("U8->I32(255) = %#x", got)
	}
}

func TestConvWordFloat(t *testing.T) {
	third := math.Float64bits(1.0 / 3.0)
	f32 := ConvWord(F64, F32, third)
	if f32 == third {
		t.Error("F64->F32 should round")
	}
	want := math.Float64bits(float64(float32(1.0 / 3.0)))
	if f32 != want {
		t.Errorf("rounding mismatch: %#x vs %#x", f32, want)
	}
	// int -> float -> int round trip for exactly representable values.
	if got := ConvWord(F64, I32, ConvWord(I32, F64, Canon(I32, ^uint64(41)))); got != Canon(I32, ^uint64(41)) {
		t.Errorf("round trip of -42 = %d", int64(got))
	}
	// float->int overflow is resolved deterministically (x86-style).
	big := math.Float64bits(1e30)
	if got := ConvWord(F64, I32, big); got != Canon(I32, uint64(1)<<31) {
		t.Errorf("overflowing F64->I32 = %#x", got)
	}
	nan := math.Float64bits(math.NaN())
	if got := ConvWord(F64, I64, nan); got != uint64(1)<<63 {
		t.Errorf("NaN->I64 = %#x", got)
	}
}

func TestOverflowSigned(t *testing.T) {
	if !OverflowSigned(Add, I32, Canon(I32, 0x7fffffff), 1) {
		t.Error("INT_MAX+1 should overflow")
	}
	if OverflowSigned(Add, U32, 0xffffffff, 1) {
		t.Error("unsigned wrap is not overflow")
	}
	if !OverflowSigned(Neg, I32, Canon(I32, uint64(1)<<31), 0) {
		t.Error("-INT_MIN should overflow")
	}
	if OverflowSigned(Mul, I32, 1<<10, 1<<10) {
		t.Error("2^20 fits in int")
	}
}

// Property: whenever IntBinOK folds, the result is canonical.
func TestQuickFoldedResultsCanonical(t *testing.T) {
	ops := []Op{Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr}
	tcs := []TypeCode{I8, U8, I32, U32, I64, U64}
	f := func(a, b uint64, oi, ti uint8) bool {
		op := ops[int(oi)%len(ops)]
		tc := tcs[int(ti)%len(tcs)]
		a, b = Canon(tc, a), Canon(tc, b)
		r, ok := IntBinOK(op, tc, a, b)
		if !ok {
			return true
		}
		return r == Canon(tc, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ConstI, Imm: 42}, "consti"},
		{Instr{Op: Load, A: 4, B: 1}, "w4 s"},
		{Instr{Op: Conv, A: uint8(I32), B: uint8(I64)}, "i32->i64"},
		{Instr{Op: Call, Imm: 3, A: 2, B: 1}, "fn3 nargs=2 rtl=1"},
		{Instr{Op: Add, A: uint8(U32)}, "u32"},
	}
	for _, c := range cases {
		if got := c.in.String(); !strings.Contains(got, c.want) {
			t.Errorf("%v.String() = %q, want substring %q", c.in.Op, got, c.want)
		}
	}
}

func TestMemoryMapOrdering(t *testing.T) {
	if !(NullTop <= RodataBase && RodataBase < GlobalsBase &&
		GlobalsBase < StackBase && StackBase < HeapBase && HeapBase < MemSize) {
		t.Fatal("memory map segments out of order")
	}
}

func TestDisasm(t *testing.T) {
	p := &Program{
		Funcs: []*Func{{
			Name: "main",
			Code: []Instr{{Op: ConstI, Imm: 7}, {Op: Ret, A: 1}},
		}},
	}
	out := p.Disasm()
	for _, want := range []string{"func 0 main", "consti", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
}
