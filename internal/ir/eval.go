package ir

import "math"

// Memory map shared by every binary. The segment bases are identical
// across compiler implementations; what differs per implementation is
// layout *within* segments (slot/global ordering, allocator headers,
// stack growth direction), which the standard leaves open.
const (
	NullTop     = 0x1000 // addresses below this are never mapped
	RodataBase  = 0x1000 // string literals
	RodataMax   = 0x10000
	GlobalsBase = 0x10000 // globals and C static locals (zero-initialized)
	GlobalsMax  = 0x20000
	StackBase   = 0x20000 // call frames
	StackMax    = 0x60000
	HeapBase    = 0x60000 // malloc arena
	HeapMax     = 0x100000
	MemSize     = 0x100000
)

// Canon canonicalizes a 64-bit word to the given integer type code:
// the value is truncated to the code's width and then sign- or
// zero-extended back to 64 bits. The compiler's constant folder and
// the VM share this so compile-time and run-time arithmetic agree
// exactly on defined values.
func Canon(tc TypeCode, v uint64) uint64 {
	switch tc {
	case I8:
		return uint64(int64(int8(v)))
	case U8:
		return uint64(uint8(v))
	case I32:
		return uint64(int64(int32(v)))
	case U32:
		return uint64(uint32(v))
	default: // I64, U64
		return v
	}
}

// IntBinOK reports whether op on a, b at tc is fully defined, and if
// so returns the canonical result. It refuses to evaluate signed
// overflow, division by zero, INT_MIN/-1, and out-of-range shifts —
// those are UB and must be left to the run-time policies so that
// divergence (or its absence) is decided by the execution profile,
// not by the constant folder.
func IntBinOK(op Op, tc TypeCode, a, b uint64) (uint64, bool) {
	bits := tc.Bits()
	signed := tc.Signed()
	switch op {
	case Add:
		if signed {
			r := int64(a) + int64(b)
			if addOverflows(int64(a), int64(b), bits) {
				return 0, false
			}
			return Canon(tc, uint64(r)), true
		}
		return Canon(tc, a+b), true
	case Sub:
		if signed {
			r := int64(a) - int64(b)
			if subOverflows(int64(a), int64(b), bits) {
				return 0, false
			}
			return Canon(tc, uint64(r)), true
		}
		return Canon(tc, a-b), true
	case Mul:
		if signed {
			if mulOverflows(int64(a), int64(b), bits) {
				return 0, false
			}
			return Canon(tc, uint64(int64(a)*int64(b))), true
		}
		return Canon(tc, a*b), true
	case Div:
		if b == 0 {
			return 0, false
		}
		if signed {
			if int64(b) == -1 && int64(a) == minInt(bits) {
				return 0, false
			}
			return Canon(tc, uint64(int64(a)/int64(b))), true
		}
		return Canon(tc, truncU(a, bits)/truncU(b, bits)), true
	case Mod:
		if b == 0 {
			return 0, false
		}
		if signed {
			if int64(b) == -1 && int64(a) == minInt(bits) {
				return 0, false
			}
			return Canon(tc, uint64(int64(a)%int64(b))), true
		}
		return Canon(tc, truncU(a, bits)%truncU(b, bits)), true
	case BitAnd:
		return Canon(tc, a&b), true
	case BitOr:
		return Canon(tc, a|b), true
	case BitXor:
		return Canon(tc, a^b), true
	case Shl:
		if shiftOOB(b, bits) || (signed && int64(a) < 0) {
			return 0, false
		}
		return Canon(tc, a<<b), true
	case Shr:
		if shiftOOB(b, bits) {
			return 0, false
		}
		if signed {
			return Canon(tc, uint64(int64(a)>>b)), true
		}
		return Canon(tc, truncU(a, bits)>>b), true
	case CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe:
		return boolWord(IntCmp(op, tc, a, b)), true
	}
	return 0, false
}

// IntAlu computes the non-trapping integer ALU ops (Add, Sub, Mul,
// BitAnd, BitOr, BitXor) on canonical values. Both interpreter loops
// and the AluImm superinstruction evaluate through it, so the fused
// and unfused forms cannot drift.
func IntAlu(op Op, tc TypeCode, a, b uint64) uint64 {
	switch op {
	case Add:
		return Canon(tc, a+b)
	case Sub:
		return Canon(tc, a-b)
	case Mul:
		return Canon(tc, a*b)
	case BitAnd:
		return Canon(tc, a&b)
	case BitOr:
		return Canon(tc, a|b)
	default:
		return Canon(tc, a^b)
	}
}

// IntCmp compares canonical values a, b under tc's signedness.
func IntCmp(op Op, tc TypeCode, a, b uint64) bool {
	if tc.Signed() {
		x, y := int64(a), int64(b)
		switch op {
		case CmpEq:
			return x == y
		case CmpNe:
			return x != y
		case CmpLt:
			return x < y
		case CmpLe:
			return x <= y
		case CmpGt:
			return x > y
		case CmpGe:
			return x >= y
		}
	}
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return false
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ConvWord converts a canonical value from one type code to another,
// mirroring C's conversion rules. Float-to-integer overflow, which is
// UB in C, is resolved deterministically the x86 way (min value of the
// target), so it never diverges and never corrupts the host.
func ConvWord(from, to TypeCode, v uint64) uint64 {
	switch {
	case !from.IsFloat() && !to.IsFloat():
		return Canon(to, v)
	case from.IsFloat() && to.IsFloat():
		f := math.Float64frombits(v)
		if to == F32 {
			return math.Float64bits(float64(float32(f)))
		}
		return v // F32 values are stored as exact float64s already
	case !from.IsFloat(): // int -> float
		var f float64
		if from.Signed() {
			f = float64(int64(v))
		} else {
			f = float64(v)
		}
		if to == F32 {
			f = float64(float32(f))
		}
		return math.Float64bits(f)
	default: // float -> int
		f := math.Float64frombits(v)
		return Canon(to, floatToInt(f, to))
	}
}

func floatToInt(f float64, to TypeCode) uint64 {
	bits := to.Bits()
	if math.IsNaN(f) {
		return uint64(minInt(bits))
	}
	if to.Signed() {
		lo, hi := float64(minInt(bits)), float64(maxInt(bits))
		if f < lo || f > hi {
			return uint64(minInt(bits))
		}
		return uint64(int64(f))
	}
	hi := math.Ldexp(1, bits)
	if f <= -1 || f >= hi {
		return uint64(minInt(bits))
	}
	if f < 0 {
		return 0
	}
	return uint64(f)
}

func truncU(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

func minInt(bits int) int64 {
	return -1 << uint(bits-1)
}

func maxInt(bits int) int64 {
	return 1<<uint(bits-1) - 1
}

func shiftOOB(count uint64, bits int) bool {
	return count >= uint64(bits)
}

func addOverflows(a, b int64, bits int) bool {
	r := a + b
	if bits < 64 {
		return r < minInt(bits) || r > maxInt(bits)
	}
	return (b > 0 && a > math.MaxInt64-b) || (b < 0 && a < math.MinInt64-b)
}

func subOverflows(a, b int64, bits int) bool {
	r := a - b
	if bits < 64 {
		return r < minInt(bits) || r > maxInt(bits)
	}
	return (b < 0 && a > math.MaxInt64+b) || (b > 0 && a < math.MinInt64+b)
}

func mulOverflows(a, b int64, bits int) bool {
	if a == 0 || b == 0 {
		return false
	}
	if bits < 64 {
		r := a * b // cannot overflow int64 for 8/32-bit inputs
		return r < minInt(bits) || r > maxInt(bits)
	}
	r := a * b
	return r/b != a || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64)
}

// OverflowSigned reports whether the signed operation op(a,b) at tc
// overflows; the VM's UBSan mode uses it for its checks.
func OverflowSigned(op Op, tc TypeCode, a, b uint64) bool {
	if !tc.Signed() {
		return false
	}
	bits := tc.Bits()
	switch op {
	case Add:
		return addOverflows(int64(a), int64(b), bits)
	case Sub:
		return subOverflows(int64(a), int64(b), bits)
	case Mul:
		return mulOverflows(int64(a), int64(b), bits)
	case Neg:
		return int64(a) == minInt(bits)
	}
	return false
}
