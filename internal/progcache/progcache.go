// Package progcache is a compiled-program cache: a byte-bounded LRU
// of k-way compilation records keyed by the murmur3-128 of the
// program source. The compile-stage oracle pays one front-end pass
// plus k lowerings per corpus program; corpora with duplicate
// programs (minimized pools, generated corpora, and especially the
// progen revisit path, where an evolutionary mutator keeps proposing
// programs it has tried before) pay it again for every revisit. The
// cache makes a revisit one 128-bit hash and a map probe.
//
// A cached record is a pure function of the source text: the front
// end and every lowering are deterministic, so serving a hit instead
// of recompiling cannot change a campaign's findings — which is why
// cache settings stay out of the campaign options hash. Records are
// immutable after construction; eviction merely unlinks them, so a
// reader holding a *Compiled across an eviction keeps a fully valid
// record (the fuzz layer hammers exactly this property).
package progcache

import (
	"sync"

	"compdiff/internal/compiler"
	"compdiff/internal/hash"
	"compdiff/internal/ir"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
)

// keySeed namespaces the source hash; independent from the seeds used
// by output checksums (0xaf1d), signatures, and campaign hashes.
const keySeed = 0x9c0d

// DefaultBudget is the byte budget New applies when given 0.
const DefaultBudget = 64 << 20

// Key identifies a program source by its murmur3-128.
type Key struct{ Lo, Hi uint64 }

// KeyOf hashes one source text.
func KeyOf(src string) Key {
	lo, hi := hash.Sum128([]byte(src), keySeed)
	return Key{Lo: lo, Hi: hi}
}

// Compiled is one immutable compilation record: either a uniform
// front-end reject, or one compiler.Result per configuration
// (positional). Accepting results carry the lowered *ir.Program,
// which machines share read-only, so a record may safely back any
// number of concurrent suites.
type Compiled struct {
	// FrontendErr is the parse or sema error; when non-nil, Results
	// is nil (the front end is shared, so a reject is uniform across
	// implementations and never a finding).
	FrontendErr error
	// Results holds the guarded per-configuration compile results in
	// the order the configs were given.
	Results []compiler.Result

	size int64
}

// SizeBytes is the record's cost against the cache budget: an
// estimate of the retained bytecode, rodata, and diagnostics.
func (c *Compiled) SizeBytes() int64 { return c.size }

// Compile runs the shared front end once and then lowers under every
// configuration, k-way in parallel when parallelism > 1 (each
// lowering is independent). This is the miss path; it is also usable
// standalone as a guarded "compile under all configs" helper.
func Compile(src string, cfgs []compiler.Config, parallelism int) *Compiled {
	prog, err := parser.Parse(src)
	if err != nil {
		return &Compiled{FrontendErr: err, size: recordOverhead + int64(len(err.Error()))}
	}
	info, err := sema.Check(prog)
	if err != nil {
		return &Compiled{FrontendErr: err, size: recordOverhead + int64(len(err.Error()))}
	}
	results := make([]compiler.Result, len(cfgs))
	if parallelism > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, parallelism)
		for i := range cfgs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				results[i] = compiler.CompileGuarded(info, cfgs[i])
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range cfgs {
			results[i] = compiler.CompileGuarded(info, cfgs[i])
		}
	}
	c := &Compiled{Results: results, size: recordOverhead}
	for i := range results {
		c.size += resultBytes(&results[i])
	}
	return c
}

// Cost-model constants: close enough for a budget, not an accounting
// audit. instrBytes is sizeof(ir.Instr) rounded up.
const (
	recordOverhead = 256
	instrBytes     = 32
	funcOverhead   = 128
)

func resultBytes(r *compiler.Result) int64 {
	n := int64(64)
	for _, d := range r.Diags {
		n += int64(len(d)) + 16
	}
	n += int64(len(r.ICE))
	if r.Err != nil {
		n += int64(len(r.Err.Error()))
	}
	if r.Prog != nil {
		n += progBytes(r.Prog)
	}
	return n
}

func progBytes(p *ir.Program) int64 {
	n := int64(len(p.Rodata)) + 128
	for _, gi := range p.GlobalInit {
		n += int64(len(gi.Data)) + 16
	}
	for _, f := range p.Funcs {
		n += funcOverhead + int64(len(f.Code))*instrBytes
	}
	return n
}

// Cache is the byte-bounded LRU. Safe for concurrent use; the k-way
// compile on a miss runs outside the lock, so a slow lowering never
// blocks hits. Two goroutines missing on the same key may both
// compile — the first insert wins and the loser adopts it, keeping
// exactly one record per key resident.
type Cache struct {
	mu     sync.Mutex
	budget int64
	size   int64
	m      map[Key]*entry
	// Intrusive LRU list: head is most recent, tail the eviction end.
	head, tail *entry

	hits, misses, evictions int64
}

type entry struct {
	key        Key
	val        *Compiled
	prev, next *entry
}

// Stats is a point-in-time cache summary.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

// New builds a cache with the given byte budget. budget == 0 selects
// DefaultBudget; a negative budget disables bounding (never evicts).
func New(budget int64) *Cache {
	if budget == 0 {
		budget = DefaultBudget
	}
	return &Cache{budget: budget, m: make(map[Key]*entry)}
}

// Get returns the compilation record for src, compiling under cfgs
// (parallelism-way) on a miss. The returned record is immutable and
// remains valid regardless of later evictions.
func (c *Cache) Get(src string, cfgs []compiler.Config, parallelism int) *Compiled {
	k := KeyOf(src)
	c.mu.Lock()
	if e := c.m[k]; e != nil {
		c.hits++
		c.moveFront(e)
		v := e.val
		c.mu.Unlock()
		return v
	}
	c.misses++
	c.mu.Unlock()

	v := Compile(src, cfgs, parallelism)

	c.mu.Lock()
	if e := c.m[k]; e != nil {
		// A concurrent miss inserted first; adopt its record so every
		// caller observes one canonical value per key.
		c.moveFront(e)
		v = e.val
		c.mu.Unlock()
		return v
	}
	e := &entry{key: k, val: v}
	c.m[k] = e
	c.pushFront(e)
	c.size += v.size
	if c.budget > 0 {
		for c.size > c.budget && c.tail != nil {
			c.evict(c.tail)
		}
	}
	c.mu.Unlock()
	return v
}

// Len is the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports cumulative hit/miss/eviction counts and residency.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.m), Bytes: c.size,
	}
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) evict(e *entry) {
	c.unlink(e)
	delete(c.m, e.key)
	c.size -= e.val.size
	c.evictions++
}
