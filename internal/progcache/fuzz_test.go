package progcache_test

// FuzzProgCache is the cache's own differential oracle: whatever the
// fuzzer feeds it, a cache hit must be bit-identical to a cold
// compile of the same source, and LRU eviction under a deliberately
// tiny byte budget must never corrupt a record a concurrent reader is
// holding. Records are immutable by contract; this is the test that
// makes the contract load-bearing.

import (
	"reflect"
	"sync"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/progcache"
)

// fuzzConfigs keeps the per-execution compile cost low while still
// spanning families and optimization levels.
func fuzzConfigs() []compiler.Config {
	return []compiler.Config{
		{Family: compiler.GCC, Opt: compiler.O0},
		{Family: compiler.Clang, Opt: compiler.O2},
		{Family: compiler.GCC, Opt: compiler.O3},
	}
}

// churnSources are fixed well-formed programs interleaved with the
// fuzzed source so the tiny budget keeps evicting.
var churnSources = []string{
	`int main() { printf("a\n"); return 0; }`,
	`int main() { int i; int s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } printf("%d\n", s); return 0; }`,
	`int f(int x) { return x * x; } int main() { printf("%d\n", f(7)); return 0; }`,
}

// assertSameCompiled demands bit-identical records: same front-end
// verdict, same per-config error/ICE/diagnostics text, and deeply
// equal lowered programs.
func assertSameCompiled(t *testing.T, want, got *progcache.Compiled) {
	t.Helper()
	if (want.FrontendErr == nil) != (got.FrontendErr == nil) {
		t.Fatalf("frontend verdict diverged: cold=%v cached=%v", want.FrontendErr, got.FrontendErr)
	}
	if want.FrontendErr != nil {
		if want.FrontendErr.Error() != got.FrontendErr.Error() {
			t.Fatalf("frontend error diverged: cold=%q cached=%q", want.FrontendErr, got.FrontendErr)
		}
		return
	}
	if len(want.Results) != len(got.Results) {
		t.Fatalf("result count diverged: cold=%d cached=%d", len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		w, g := &want.Results[i], &got.Results[i]
		if (w.Err == nil) != (g.Err == nil) ||
			(w.Err != nil && w.Err.Error() != g.Err.Error()) {
			t.Fatalf("config %d: error diverged: cold=%v cached=%v", i, w.Err, g.Err)
		}
		if w.ICE != g.ICE {
			t.Fatalf("config %d: ICE diverged: cold=%q cached=%q", i, w.ICE, g.ICE)
		}
		if !reflect.DeepEqual(w.Diags, g.Diags) {
			t.Fatalf("config %d: diagnostics diverged: cold=%v cached=%v", i, w.Diags, g.Diags)
		}
		if !reflect.DeepEqual(w.Prog, g.Prog) {
			t.Fatalf("config %d: lowered program diverged", i)
		}
	}
}

func FuzzProgCache(f *testing.F) {
	f.Add(`int main() { printf("hi\n"); return 0; }`, uint8(3))
	f.Add(`int main() { int x; read_input(&x, 4); printf("%d\n", x * 3); return 0; }`, uint8(0))
	f.Add(`int main() { return`, uint8(1)) // parse reject
	f.Add(`int main() { undeclared = 1; return 0; }`, uint8(7))
	f.Fuzz(func(t *testing.T, src string, budgetKnob uint8) {
		if len(src) > 4<<10 {
			t.Skip("oversized source")
		}
		cfgs := fuzzConfigs()
		// Budgets from 1 byte (every insert immediately evicts) up to
		// a few KiB (some residency, constant churn).
		cache := progcache.New(int64(budgetKnob)*97 + 1)

		// Cold records, compiled outside the cache, are the ground
		// truth each concurrent reader checks its hits against.
		sources := append([]string{src}, churnSources...)
		cold := make([]*progcache.Compiled, len(sources))
		for i, s := range sources {
			cold[i] = progcache.Compile(s, cfgs, 1)
		}

		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 2*len(sources); i++ {
					// Distinct per-worker orders maximize interleaved
					// insert/evict/hit traffic on the shared cache.
					j := (i + w) % len(sources)
					assertSameCompiled(t, cold[j], cache.Get(sources[j], cfgs, 1))
				}
			}()
		}
		wg.Wait()

		st := cache.Stats()
		if st.Hits+st.Misses == 0 {
			t.Fatal("cache saw no traffic")
		}
		if st.Bytes < 0 {
			t.Fatalf("negative resident size %d after eviction churn", st.Bytes)
		}
	})
}

// TestCacheEvictionBounds pins the budget arithmetic directly: after
// any Get sequence, resident bytes stay at or under the budget (the
// newest record is evicted too when it alone exceeds it).
func TestCacheEvictionBounds(t *testing.T) {
	cfgs := fuzzConfigs()
	for _, budget := range []int64{1, 512, 4096, 1 << 20} {
		cache := progcache.New(budget)
		for i := 0; i < 3; i++ {
			for _, s := range churnSources {
				cache.Get(s, cfgs, 1)
				if st := cache.Stats(); st.Bytes > budget {
					t.Fatalf("budget %d: resident %d bytes", budget, st.Bytes)
				}
			}
		}
	}
}

// TestCacheUnboundedNeverEvicts pins the negative-budget contract.
func TestCacheUnboundedNeverEvicts(t *testing.T) {
	cache := progcache.New(-1)
	cfgs := fuzzConfigs()
	for _, s := range churnSources {
		cache.Get(s, cfgs, 1)
	}
	st := cache.Stats()
	if st.Evictions != 0 || st.Entries != len(churnSources) {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
	for _, s := range churnSources {
		cache.Get(s, cfgs, 1)
	}
	if st := cache.Stats(); st.Hits != int64(len(churnSources)) {
		t.Fatalf("second pass should be all hits: %+v", st)
	}
}
