package fuzz

import "math/rand"

// countingSource wraps a fuzzer RNG source and counts how many times
// the underlying generator state advances. The count is the stream
// *cursor*: rebuilding a source from the same seed and discarding
// `draws` values lands on exactly the same position, which is what
// lets a checkpoint capture "where the RNG is" without serializing
// math/rand internals. The wrapper changes nothing about the generated
// stream — rand.Rand sees a Source64 exactly as it does today.
type countingSource struct {
	src   rand.Source
	s64   rand.Source64 // non-nil when src supports single-step Uint64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	c := &countingSource{}
	c.reset(seed)
	return c
}

func (c *countingSource) reset(seed int64) {
	c.src = rand.NewSource(seed)
	c.s64, _ = c.src.(rand.Source64)
	c.draws = 0
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64. When the underlying source is not a
// Source64 (not the case for rand.NewSource, but kept correct anyway),
// it composes two Int63 draws the same way rand.Rand itself would, and
// counts both — the cursor always measures underlying state advances.
func (c *countingSource) Uint64() uint64 {
	if c.s64 != nil {
		c.draws++
		return c.s64.Uint64()
	}
	c.draws += 2
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

func (c *countingSource) Seed(seed int64) { c.reset(seed) }

// seek rebuilds the source from seed and replays n underlying state
// advances, restoring a checkpointed cursor. Replay runs at tens of
// millions of draws per second, so even long campaigns resume in well
// under a second.
func (c *countingSource) seek(seed int64, n uint64) {
	c.reset(seed)
	if c.s64 != nil {
		for i := uint64(0); i < n; i++ {
			c.s64.Uint64()
		}
		c.draws = n
		return
	}
	for i := uint64(0); i < n; i++ {
		c.src.Int63()
	}
	c.draws = n
}
