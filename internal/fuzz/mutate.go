package fuzz

import "math/rand"

// interesting values, as in AFL.
var (
	interesting8  = []int8{-128, -1, 0, 1, 16, 32, 64, 100, 127}
	interesting16 = []int16{-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767}
	interesting32 = []int32{-2147483648, -100663046, -32769, 32768, 65535, 65536, 100663045, 2147483647}
)

// Mutator produces mutated inputs. It owns a deterministic RNG so
// campaigns are reproducible; the RNG sits behind a counting source so
// checkpoints can record and restore the exact stream position.
type Mutator struct {
	rng  *rand.Rand
	cs   *countingSource
	seed int64
	max  int // maximum input length
}

// NewMutator returns a mutator with the given seed and size cap.
func NewMutator(seed int64, maxLen int) *Mutator {
	if maxLen <= 0 {
		maxLen = 4096
	}
	cs := newCountingSource(seed)
	return &Mutator{rng: rand.New(cs), cs: cs, seed: seed, max: maxLen}
}

// Cursor returns the RNG stream position (underlying state advances
// consumed so far) — the value Seek restores.
func (mu *Mutator) Cursor() uint64 { return mu.cs.draws }

// Seek rewinds the mutator's RNG to the given checkpointed cursor by
// replaying the stream from the construction seed.
func (mu *Mutator) Seek(n uint64) { mu.cs.seek(mu.seed, n) }

// Deterministic runs the AFL-style deterministic stage over data,
// invoking yield for each mutant. The stage is bounded to keep small
// corpora fast: bit flips, byte flips, byte arithmetic, and
// interesting-value substitution.
func (mu *Mutator) Deterministic(data []byte, yield func([]byte) bool) {
	buf := make([]byte, len(data))
	emit := func() bool {
		out := make([]byte, len(buf))
		copy(out, buf)
		return yield(out)
	}
	// Walking bit flips.
	for i := 0; i < len(data)*8; i++ {
		copy(buf, data)
		buf[i/8] ^= 1 << (i % 8)
		if !emit() {
			return
		}
	}
	// Byte flips.
	for i := range data {
		copy(buf, data)
		buf[i] ^= 0xff
		if !emit() {
			return
		}
	}
	// Arithmetic +-1..8.
	for i := range data {
		for d := 1; d <= 8; d++ {
			copy(buf, data)
			buf[i] = data[i] + byte(d)
			if !emit() {
				return
			}
			copy(buf, data)
			buf[i] = data[i] - byte(d)
			if !emit() {
				return
			}
		}
	}
	// Interesting bytes.
	for i := range data {
		for _, v := range interesting8 {
			copy(buf, data)
			buf[i] = byte(v)
			if !emit() {
				return
			}
		}
	}
	// Interesting 32-bit values (little-endian), where they fit.
	for i := 0; i+4 <= len(data); i++ {
		for _, v := range interesting32 {
			copy(buf, data)
			putLE32(buf[i:], uint32(v))
			if !emit() {
				return
			}
		}
	}
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Havoc applies 1..n random stacked mutations and returns the mutant.
func (mu *Mutator) Havoc(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	stack := 1 << (1 + mu.rng.Intn(5)) // 2..32 stacked ops
	for s := 0; s < stack; s++ {
		out = mu.havocOne(out)
		if len(out) == 0 {
			out = []byte{byte(mu.rng.Intn(256))}
		}
	}
	if len(out) > mu.max {
		out = out[:mu.max]
	}
	return out
}

func (mu *Mutator) havocOne(out []byte) []byte {
	r := mu.rng
	switch r.Intn(12) {
	case 0: // flip a bit
		i := r.Intn(len(out))
		out[i] ^= 1 << r.Intn(8)
	case 1: // set interesting byte
		out[r.Intn(len(out))] = byte(interesting8[r.Intn(len(interesting8))])
	case 2: // set interesting 16-bit
		if len(out) >= 2 {
			i := r.Intn(len(out) - 1)
			v := uint16(interesting16[r.Intn(len(interesting16))])
			out[i], out[i+1] = byte(v), byte(v>>8)
		}
	case 3: // set interesting 32-bit
		if len(out) >= 4 {
			i := r.Intn(len(out) - 3)
			putLE32(out[i:], uint32(interesting32[r.Intn(len(interesting32))]))
		}
	case 4: // random byte arithmetic
		i := r.Intn(len(out))
		out[i] += byte(1 + r.Intn(35))
	case 5:
		i := r.Intn(len(out))
		out[i] -= byte(1 + r.Intn(35))
	case 6: // random byte
		out[r.Intn(len(out))] = byte(r.Intn(256))
	case 7: // delete a block
		if len(out) > 1 {
			from := r.Intn(len(out))
			n := 1 + r.Intn(len(out)-from)
			out = append(out[:from], out[from+n:]...)
		}
	case 8: // clone/insert a block
		if len(out) < mu.max {
			from := r.Intn(len(out))
			n := 1 + r.Intn(len(out)-from)
			if len(out)+n > mu.max {
				n = mu.max - len(out)
			}
			if n > 0 {
				at := r.Intn(len(out) + 1)
				block := append([]byte(nil), out[from:from+n]...)
				out = append(out[:at], append(block, out[at:]...)...)
			}
		}
	case 9: // overwrite with a block from elsewhere
		if len(out) > 2 {
			from := r.Intn(len(out))
			n := 1 + r.Intn(len(out)-from)
			to := r.Intn(len(out) - n + 1)
			copy(out[to:to+n], out[from:from+n])
		}
	case 10: // overwrite with repeated byte
		if len(out) > 1 {
			from := r.Intn(len(out))
			n := 1 + r.Intn(len(out)-from)
			c := byte(r.Intn(256))
			for i := from; i < from+n; i++ {
				out[i] = c
			}
		}
	case 11: // swap two bytes
		if len(out) > 1 {
			i, j := r.Intn(len(out)), r.Intn(len(out))
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// Splice combines the head of a with the tail of b (AFL's splice
// stage) and then havocs the result.
func (mu *Mutator) Splice(a, b []byte) []byte {
	if len(a) < 2 || len(b) < 2 {
		return mu.Havoc(a)
	}
	cutA := 1 + mu.rng.Intn(len(a)-1)
	cutB := mu.rng.Intn(len(b))
	spliced := append(append([]byte(nil), a[:cutA]...), b[cutB:]...)
	if len(spliced) > mu.max {
		spliced = spliced[:mu.max]
	}
	return mu.Havoc(spliced)
}
