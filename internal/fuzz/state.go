package fuzz

import (
	"fmt"
	"sort"
)

// State is a fuzzer's complete serializable state: everything that
// influences future fuzzing behavior (queue, coverage map, dedup sets,
// stats, RNG cursors), captured between Run calls. A fresh fuzzer
// built with the same executor and options, after RestoreState, will
// generate the byte-identical execution stream the original would
// have — the property campaign resume leans on.
type State struct {
	// MutCursor and RngCursor are the mutator / splice-stage RNG stream
	// positions (see Mutator.Cursor).
	MutCursor uint64 `json:"mut_cursor"`
	RngCursor uint64 `json:"rng_cursor"`
	// Virgin is the cross-run coverage map (AFL's virgin_bits).
	Virgin []byte `json:"virgin"`
	// Queue is the seed corpus in queue order, including per-seed
	// energy bookkeeping (Execs) and favored flags from the last cull.
	Queue []*Seed `json:"queue"`
	// Hashes is the sorted queue-dedup set (coverage and ForceSeed
	// content fingerprints).
	Hashes []uint64 `json:"hashes"`
	// Crashes are the deduplicated crashing inputs with their results.
	Crashes []*Crash `json:"crashes,omitempty"`
	// Execs, Cycles, and LastNewPath mirror Stats; Seeds and
	// UniqueCrashes are derived from Queue and Crashes.
	Execs       int64 `json:"execs"`
	Cycles      int   `json:"cycles"`
	LastNewPath int64 `json:"last_new_path"`
}

// ExportState captures the fuzzer's state. Call only between Run
// calls (the fuzzer is single-goroutine); the returned state shares no
// memory with the fuzzer.
func (f *Fuzzer) ExportState() *State {
	st := &State{
		MutCursor:   f.mut.Cursor(),
		RngCursor:   f.rngCS.draws,
		Virgin:      append([]byte(nil), f.virgin...),
		Execs:       f.stats.Execs,
		Cycles:      f.stats.Cycles,
		LastNewPath: f.stats.LastNewPath,
	}
	st.Queue = make([]*Seed, len(f.queue))
	for i, s := range f.queue {
		c := *s
		c.Data = append([]byte(nil), s.Data...)
		st.Queue[i] = &c
	}
	st.Hashes = make([]uint64, 0, len(f.hashes))
	for h := range f.hashes {
		st.Hashes = append(st.Hashes, h)
	}
	sort.Slice(st.Hashes, func(i, j int) bool { return st.Hashes[i] < st.Hashes[j] })
	for _, cr := range f.Crashes() { // Crashes() is already deterministic order
		st.Crashes = append(st.Crashes, &Crash{
			Input:  append([]byte(nil), cr.Input...),
			Result: cr.Result.Clone(),
		})
	}
	return st
}

// RestoreState replaces the fuzzer's state with a checkpointed one.
// The fuzzer must have been built with the same options (seed, input
// cap) and an equivalent executor as the one that exported st; the
// RNG cursors are replayed from the construction seeds, so a seed
// mismatch would silently change the stream. Whatever seed ingestion
// the constructor performed is discarded — the restored queue already
// reflects it.
func (f *Fuzzer) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("fuzz: nil state")
	}
	if len(st.Virgin) != MapSize {
		return fmt.Errorf("fuzz: virgin map is %d bytes, want %d", len(st.Virgin), MapSize)
	}
	if len(st.Queue) == 0 {
		return fmt.Errorf("fuzz: restored queue is empty")
	}
	f.mut.Seek(st.MutCursor)
	f.rngCS.seek(f.opts.Seed^0x5eed, st.RngCursor)
	f.virgin = append(f.virgin[:0], st.Virgin...)
	f.queue = make([]*Seed, len(st.Queue))
	for i, s := range st.Queue {
		c := *s
		c.Data = append([]byte(nil), s.Data...)
		f.queue[i] = &c
	}
	f.hashes = make(map[uint64]bool, len(st.Hashes))
	for _, h := range st.Hashes {
		f.hashes[h] = true
	}
	f.crash = make(map[uint64]*Crash, len(st.Crashes))
	for _, cr := range st.Crashes {
		if cr.Result == nil {
			return fmt.Errorf("fuzz: crash entry without result")
		}
		f.crash[crashSig(cr.Result)] = &Crash{
			Input:  append([]byte(nil), cr.Input...),
			Result: cr.Result.Clone(),
		}
	}
	f.stats = Stats{
		Execs:       st.Execs,
		Cycles:      st.Cycles,
		LastNewPath: st.LastNewPath,
	}
	return nil
}
