package fuzz

import (
	"math/rand"
	"sort"

	"compdiff/internal/vm"
)

// Executor runs a target binary on an input and exposes its coverage
// bitmap. *vm.Machine with coverage enabled satisfies it.
type Executor interface {
	Run(input []byte) *vm.Result
	Coverage() []byte
}

// SharedExecutor is an optional Executor extension for the zero-copy
// fast path: RunShared returns a result aliasing executor-owned
// buffers, valid only until the executor's next run. The fuzzer
// prefers it when available and clones before retaining anything
// (crash store). *vm.Machine satisfies it.
type SharedExecutor interface {
	Executor
	RunShared(input []byte) *vm.Result
}

// Seed is one queue entry.
type Seed struct {
	Data    []byte
	CovBits int
	Hash    uint64
	Favored bool
	Execs   int // fuzzing rounds spent on this seed
}

// Crash is a saved crashing input, deduplicated by a coarse signature.
type Crash struct {
	Input  []byte
	Result *vm.Result
}

// Stats summarizes a campaign.
type Stats struct {
	Execs         int64
	Seeds         int
	UniqueCrashes int
	Cycles        int
	LastNewPath   int64 // exec count at the last queue addition
}

// Options configures a fuzzer.
type Options struct {
	// Seed is the RNG seed (campaign reproducibility).
	Seed int64
	// MaxInputLen caps generated inputs. Default 4096.
	MaxInputLen int
	// SkipDeterministic disables the deterministic stage (useful for
	// large seeds, as with AFL's -d).
	SkipDeterministic bool
	// OnExec, if set, observes every generated input and its result on
	// the instrumented binary. This is CompDiff's integration point:
	// Algorithm 1 adds its differential oracle here, leaving the
	// fuzzing loop untouched.
	//
	// When the executor implements SharedExecutor, res aliases
	// executor-owned buffers and is valid only for the duration of the
	// callback; use res.Clone() to retain it.
	OnExec func(input []byte, res *vm.Result)
}

// Fuzzer is an AFL++-style coverage-guided fuzzer. A Fuzzer (queue,
// stats, coverage bitmaps) is confined to one goroutine: the sharded
// campaign pool gives each shard its own Fuzzer and only touches
// queues and stats at synchronization barriers, after every shard
// goroutine has joined.
type Fuzzer struct {
	exec   Executor
	shared SharedExecutor // non-nil when exec supports the zero-copy path
	opts   Options
	mut    *Mutator
	rng    *rand.Rand
	rngCS  *countingSource // splice RNG stream cursor (checkpointing)
	virgin []byte
	queue  []*Seed
	hashes map[uint64]bool
	crash  map[uint64]*Crash
	stats  Stats
}

// New creates a fuzzer over the executor with initial seeds. Seeds
// that crash outright are kept as crashes, not queue entries.
func New(exec Executor, seeds [][]byte, opts Options) *Fuzzer {
	if opts.MaxInputLen <= 0 {
		opts.MaxInputLen = 4096
	}
	cs := newCountingSource(opts.Seed ^ 0x5eed)
	f := &Fuzzer{
		exec:   exec,
		opts:   opts,
		mut:    NewMutator(opts.Seed, opts.MaxInputLen),
		rng:    rand.New(cs),
		rngCS:  cs,
		virgin: make([]byte, MapSize),
		hashes: map[uint64]bool{},
		crash:  map[uint64]*Crash{},
	}
	if se, ok := exec.(SharedExecutor); ok {
		f.shared = se
	}
	if len(seeds) == 0 {
		seeds = [][]byte{[]byte("\x00")}
	}
	for _, s := range seeds {
		f.ingest(append([]byte(nil), s...))
	}
	if len(f.queue) == 0 {
		// All seeds crashed or duplicated; keep one anyway so the loop
		// has something to mutate.
		f.queue = append(f.queue, &Seed{Data: append([]byte(nil), seeds[0]...)})
	}
	f.cull()
	return f
}

// Stats returns campaign statistics so far.
func (f *Fuzzer) Stats() Stats {
	f.stats.Seeds = len(f.queue)
	f.stats.UniqueCrashes = len(f.crash)
	return f.stats
}

// Queue exposes the current seed corpus.
func (f *Fuzzer) Queue() []*Seed { return f.queue }

// Crashes returns the deduplicated crashing inputs.
func (f *Fuzzer) Crashes() []*Crash {
	var out []*Crash
	for _, c := range f.crash {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].Input) < string(out[j].Input)
	})
	return out
}

// ingest executes an input and updates the queue/crash stores: the
// body of Algorithm 1 lines 4-8.
func (f *Fuzzer) ingest(data []byte) {
	var res *vm.Result
	if f.shared != nil {
		// Zero-copy path: res aliases executor buffers for the span of
		// this call; anything retained below is cloned first.
		res = f.shared.RunShared(data)
	} else {
		res = f.exec.Run(data)
	}
	f.stats.Execs++
	cov := f.exec.Coverage()
	Classify(cov)

	if f.opts.OnExec != nil {
		f.opts.OnExec(data, res)
	}

	if res.Crashed() {
		sig := crashSig(res)
		if _, dup := f.crash[sig]; !dup {
			if f.shared != nil {
				res = res.Clone()
			}
			f.crash[sig] = &Crash{Input: append([]byte(nil), data...), Result: res}
		}
		return
	}
	if HasNewBits(f.virgin, cov) > 0 {
		h := CovHash(cov)
		if !f.hashes[h] {
			f.hashes[h] = true
			f.queue = append(f.queue, &Seed{
				Data:    append([]byte(nil), data...),
				CovBits: CountBits(cov),
				Hash:    h,
			})
			f.stats.LastNewPath = f.stats.Execs
		}
	}
}

func crashSig(res *vm.Result) uint64 {
	h := uint64(res.Exit) * 0x9e3779b97f4a7c15
	if res.San != nil {
		for _, c := range res.San.Kind {
			h = h*31 + uint64(c)
		}
		h = h*31 + uint64(res.San.Line)
	}
	return h
}

// ForceSeed inserts an input into the queue regardless of coverage —
// the hook for divergence-guided feedback (the NEZHA-style extension
// the paper sketches as future work): inputs that triggered new
// behavioral asymmetries are worth mutating even when they add no new
// edges. Content-deduplicated; returns true when the queue grew.
func (f *Fuzzer) ForceSeed(data []byte) bool {
	h := CovHash(data) // reuse the FNV fingerprint over raw bytes
	if f.hashes[h] {
		return false
	}
	f.hashes[h] = true
	f.queue = append(f.queue, &Seed{
		Data:    append([]byte(nil), data...),
		CovBits: 1,
		Hash:    h,
	})
	f.stats.LastNewPath = f.stats.Execs
	return true
}

// cull marks a favored subset of the queue: smallest input per
// coverage level, AFL-style (approximated by bit count).
func (f *Fuzzer) cull() {
	sort.SliceStable(f.queue, func(i, j int) bool {
		if f.queue[i].CovBits != f.queue[j].CovBits {
			return f.queue[i].CovBits > f.queue[j].CovBits
		}
		return len(f.queue[i].Data) < len(f.queue[j].Data)
	})
	for i, s := range f.queue {
		s.Favored = i < (len(f.queue)+3)/4
	}
}

// energy returns the havoc rounds to spend on a seed.
func (f *Fuzzer) energy(s *Seed) int {
	e := 32
	if s.Favored {
		e = 96
	}
	if s.Execs > 4 {
		e /= 2
	}
	return e
}

// Run fuzzes until the execution budget is spent and returns stats
// (Algorithm 1's main loop).
func (f *Fuzzer) Run(budget int64) Stats {
	limit := f.stats.Execs + budget
	for f.stats.Execs < limit {
		f.stats.Cycles++
		qlen := len(f.queue)
		for qi := 0; qi < qlen && f.stats.Execs < limit; qi++ {
			seed := f.queue[qi]
			seed.Execs++

			if !f.opts.SkipDeterministic && seed.Execs == 1 && len(seed.Data) <= 64 {
				f.mut.Deterministic(seed.Data, func(mutant []byte) bool {
					f.ingest(mutant)
					return f.stats.Execs < limit
				})
			}
			for i := 0; i < f.energy(seed) && f.stats.Execs < limit; i++ {
				f.ingest(f.mut.Havoc(seed.Data))
			}
			// Splice stage.
			if len(f.queue) > 1 && f.stats.Execs < limit {
				other := f.queue[f.rng.Intn(len(f.queue))]
				f.ingest(f.mut.Splice(seed.Data, other.Data))
			}
		}
		f.cull()
	}
	return f.Stats()
}
