package fuzz

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestCountingSourceTransparent: the wrapper must not change the
// generated stream — rand.Rand over a counting source equals rand.Rand
// over a plain source.
func TestCountingSourceTransparent(t *testing.T) {
	a := rand.New(rand.NewSource(99))
	b := rand.New(newCountingSource(99))
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() || a.Intn(37) != b.Intn(37) {
			t.Fatalf("stream diverged at draw %d", i)
		}
	}
}

// TestCountingSourceSeek: seeking to a recorded cursor must land on
// exactly the position the original stream reached.
func TestCountingSourceSeek(t *testing.T) {
	cs := newCountingSource(7)
	r := rand.New(cs)
	for i := 0; i < 500; i++ {
		r.Intn(1 + i%64) // mixed draw widths, like havoc does
	}
	cursor := cs.draws
	var want []int64
	for i := 0; i < 50; i++ {
		want = append(want, r.Int63())
	}

	cs2 := newCountingSource(7)
	cs2.seek(7, cursor)
	if cs2.draws != cursor {
		t.Fatalf("cursor after seek = %d, want %d", cs2.draws, cursor)
	}
	r2 := rand.New(cs2)
	for i, w := range want {
		if got := r2.Int63(); got != w {
			t.Fatalf("draw %d after seek = %d, want %d", i, got, w)
		}
	}
}

// TestMutatorSeek: a fresh mutator sought to another's cursor must
// continue with the identical mutant stream.
func TestMutatorSeek(t *testing.T) {
	a := NewMutator(11, 64)
	data := []byte("some input bytes")
	for i := 0; i < 200; i++ {
		a.Havoc(data)
	}
	cursor := a.Cursor()

	b := NewMutator(11, 64)
	b.Seek(cursor)
	for i := 0; i < 100; i++ {
		if !bytes.Equal(a.Havoc(data), b.Havoc(data)) {
			t.Fatalf("mutant stream diverged at %d after seek", i)
		}
	}
}

// TestStateJSONRoundTrip: the wire type must survive JSON exactly —
// the checkpoint layer's byte-identity property depends on it.
func TestStateJSONRoundTrip(t *testing.T) {
	m := machineFor(t, maze)
	f := New(m, [][]byte{[]byte("AAAA")}, Options{Seed: 42})
	f.Run(3_000)
	st := f.ExportState()

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, &back) {
		t.Fatal("state changed across JSON round trip")
	}
}

// TestExportRestoreEquivalence is the resume property at the fuzzer
// level: run N, export, restore into a fresh fuzzer, and both must
// generate identical futures — same stats, same queue, same crashes.
func TestExportRestoreEquivalence(t *testing.T) {
	f1 := New(machineFor(t, maze), [][]byte{[]byte("AAAA")}, Options{Seed: 42})
	f1.Run(5_000)
	st := f1.ExportState()

	// The restored fuzzer is built exactly as a resuming process would
	// build it: same options, same seeds (whose ingestion the restore
	// then discards).
	f2 := New(machineFor(t, maze), [][]byte{[]byte("AAAA")}, Options{Seed: 42})
	if err := f2.RestoreState(st); err != nil {
		t.Fatal(err)
	}

	s1 := f1.Run(5_000)
	s2 := f2.Run(5_000)
	if s1 != s2 {
		t.Fatalf("diverged after restore:\n%+v\n%+v", s1, s2)
	}
	q1, q2 := f1.Queue(), f2.Queue()
	if len(q1) != len(q2) {
		t.Fatalf("queue lengths differ: %d vs %d", len(q1), len(q2))
	}
	for i := range q1 {
		if !bytes.Equal(q1[i].Data, q2[i].Data) || q1[i].Hash != q2[i].Hash {
			t.Fatalf("queue entry %d differs", i)
		}
	}
	c1, c2 := f1.Crashes(), f2.Crashes()
	if len(c1) != len(c2) {
		t.Fatalf("crash counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if !bytes.Equal(c1[i].Input, c2[i].Input) {
			t.Fatalf("crash %d differs", i)
		}
	}
}

// TestExportSharesNoMemory: mutating the exported state must not reach
// back into the fuzzer.
func TestExportSharesNoMemory(t *testing.T) {
	f := New(machineFor(t, maze), [][]byte{[]byte("AAAA")}, Options{Seed: 1})
	f.Run(500)
	st := f.ExportState()
	before := append([]byte(nil), f.queue[0].Data...)
	st.Queue[0].Data[0] ^= 0xff
	st.Virgin[0] ^= 0xff
	if !bytes.Equal(f.queue[0].Data, before) {
		t.Fatal("exported queue aliases the live queue")
	}
}

// TestRestoreRejectsBadState: restore must validate rather than adopt
// a state that cannot be correct.
func TestRestoreRejectsBadState(t *testing.T) {
	f := New(machineFor(t, maze), [][]byte{[]byte("AAAA")}, Options{Seed: 1})
	if err := f.RestoreState(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	if err := f.RestoreState(&State{Virgin: make([]byte, 7)}); err == nil {
		t.Fatal("wrong virgin size accepted")
	}
	if err := f.RestoreState(&State{Virgin: make([]byte, MapSize)}); err == nil {
		t.Fatal("empty queue accepted")
	}
	st := &State{
		Virgin:  make([]byte, MapSize),
		Queue:   []*Seed{{Data: []byte("x")}},
		Crashes: []*Crash{{Input: []byte("y")}}, // nil Result
	}
	if err := f.RestoreState(st); err == nil {
		t.Fatal("crash without result accepted")
	}
}
