// Package fuzz implements a coverage-guided greybox fuzzer in the
// AFL++ mold: a 64 KiB edge bitmap with hit-count bucketing, a seed
// queue with favored-entry culling, deterministic and havoc mutation
// stages, and splicing. CompDiff-AFL++ (package difffuzz) plugs its
// differential oracle into the execution hook without touching this
// core loop, mirroring how the paper integrates CompDiff into AFL++
// without changing the fuzzer's logic (Algorithm 1).
package fuzz

import (
	"encoding/binary"
	"math/bits"

	"compdiff/internal/vm"
)

// MapSize is the coverage bitmap size, pinned to vm.CovMapSize: the VM
// writes edges modulo its map, the fuzzer classifies the same bytes.
const MapSize = 1 << 16

// Compile-time equality assertion, both directions — a negative
// constant does not convert to uint, so either drift refuses to build.
// The pass-coverage bitmap (compiler.NumPassKinds) is guarded the same
// way next to its definition.
const (
	_ = uint(MapSize - vm.CovMapSize)
	_ = uint(vm.CovMapSize - MapSize)
)

// classLookup buckets raw edge hit counts the way AFL does, so that
// loop-count changes register as new coverage without exploding the
// map: 0, 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128-255.
var classLookup = buildClassLookup()

func buildClassLookup() [256]byte {
	var l [256]byte
	l[0] = 0
	l[1] = 1
	l[2] = 2
	l[3] = 4
	for i := 4; i < 8; i++ {
		l[i] = 8
	}
	for i := 8; i < 16; i++ {
		l[i] = 16
	}
	for i := 16; i < 32; i++ {
		l[i] = 32
	}
	for i := 32; i < 128; i++ {
		l[i] = 64
	}
	for i := 128; i < 256; i++ {
		l[i] = 128
	}
	return l
}

// Classify rewrites a raw hit-count map into bucketed form, in place.
// The map is almost entirely zero on any one execution, so the scan
// tests eight bytes per load and only touches the bytes of words that
// have any hit at all — the dominant cost of the campaign loop is
// these 64 KiB sweeps, not the VM steps between them.
func Classify(cov []byte) {
	i := 0
	for ; i+8 <= len(cov); i += 8 {
		if binary.LittleEndian.Uint64(cov[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if v := cov[j]; v != 0 {
				cov[j] = classLookup[v]
			}
		}
	}
	for ; i < len(cov); i++ {
		if v := cov[i]; v != 0 {
			cov[i] = classLookup[v]
		}
	}
}

// HasNewBits reports whether classified coverage cov contains bits not
// yet in virgin, updating virgin. Return values follow AFL: 2 when a
// brand-new edge was hit, 1 when only hit counts changed, 0 otherwise.
// Word-wise double skip: a zero coverage word contributes nothing,
// and a word whose bits are all already in virgin neither updates nor
// changes the return — after the first few executions nearly every
// word takes one of the two skips.
func HasNewBits(virgin, cov []byte) int {
	ret := 0
	i := 0
	for ; i+8 <= len(cov) && i+8 <= len(virgin); i += 8 {
		cw := binary.LittleEndian.Uint64(cov[i:])
		if cw == 0 || binary.LittleEndian.Uint64(virgin[i:])&cw == cw {
			continue
		}
		for j := i; j < i+8; j++ {
			v := cov[j]
			if v == 0 {
				continue
			}
			if virgin[j]&v != v {
				if virgin[j] == 0 {
					ret = 2
				} else if ret == 0 {
					ret = 1
				}
				virgin[j] |= v
			}
		}
	}
	for ; i < len(cov); i++ {
		v := cov[i]
		if v == 0 {
			continue
		}
		if virgin[i]&v != v {
			if virgin[i] == 0 {
				ret = 2
			} else if ret == 0 {
				ret = 1
			}
			virgin[i] |= v
		}
	}
	return ret
}

// CountBits returns the number of set bucket bits (queue scoring).
func CountBits(cov []byte) int {
	n := 0
	i := 0
	for ; i+8 <= len(cov); i += 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(cov[i:]))
	}
	for ; i < len(cov); i++ {
		n += bits.OnesCount8(cov[i])
	}
	return n
}

// CovHash is a cheap fingerprint of a classified bitmap, used to
// detect "same path" executions.
// The zero-word skip leaves the digest byte-identical to the naive
// byte scan (zero bytes never contribute), so persisted campaign
// state keyed on these hashes stays valid.
func CovHash(cov []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	i := 0
	for ; i+8 <= len(cov); i += 8 {
		if binary.LittleEndian.Uint64(cov[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if v := cov[j]; v != 0 {
				h ^= uint64(j)<<8 | uint64(v)
				h *= 0x100000001b3
			}
		}
	}
	for ; i < len(cov); i++ {
		if v := cov[i]; v != 0 {
			h ^= uint64(i)<<8 | uint64(v)
			h *= 0x100000001b3
		}
	}
	return h
}
