// Package fuzz implements a coverage-guided greybox fuzzer in the
// AFL++ mold: a 64 KiB edge bitmap with hit-count bucketing, a seed
// queue with favored-entry culling, deterministic and havoc mutation
// stages, and splicing. CompDiff-AFL++ (package difffuzz) plugs its
// differential oracle into the execution hook without touching this
// core loop, mirroring how the paper integrates CompDiff into AFL++
// without changing the fuzzer's logic (Algorithm 1).
package fuzz

// MapSize is the coverage bitmap size (must match vm.CovMapSize).
const MapSize = 1 << 16

// classLookup buckets raw edge hit counts the way AFL does, so that
// loop-count changes register as new coverage without exploding the
// map: 0, 1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128-255.
var classLookup = buildClassLookup()

func buildClassLookup() [256]byte {
	var l [256]byte
	l[0] = 0
	l[1] = 1
	l[2] = 2
	l[3] = 4
	for i := 4; i < 8; i++ {
		l[i] = 8
	}
	for i := 8; i < 16; i++ {
		l[i] = 16
	}
	for i := 16; i < 32; i++ {
		l[i] = 32
	}
	for i := 32; i < 128; i++ {
		l[i] = 64
	}
	for i := 128; i < 256; i++ {
		l[i] = 128
	}
	return l
}

// Classify rewrites a raw hit-count map into bucketed form, in place.
func Classify(cov []byte) {
	for i, v := range cov {
		if v != 0 {
			cov[i] = classLookup[v]
		}
	}
}

// HasNewBits reports whether classified coverage cov contains bits not
// yet in virgin, updating virgin. Return values follow AFL: 2 when a
// brand-new edge was hit, 1 when only hit counts changed, 0 otherwise.
func HasNewBits(virgin, cov []byte) int {
	ret := 0
	for i, v := range cov {
		if v == 0 {
			continue
		}
		if virgin[i]&v != v {
			if virgin[i] == 0 {
				ret = 2
			} else if ret == 0 {
				ret = 1
			}
			virgin[i] |= v
		}
	}
	return ret
}

// CountBits returns the number of set bucket bits (queue scoring).
func CountBits(cov []byte) int {
	n := 0
	for _, v := range cov {
		for v != 0 {
			n += int(v & 1)
			v >>= 1
		}
	}
	return n
}

// CovHash is a cheap fingerprint of a classified bitmap, used to
// detect "same path" executions.
func CovHash(cov []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i, v := range cov {
		if v != 0 {
			h ^= uint64(i)<<8 | uint64(v)
			h *= 0x100000001b3
		}
	}
	return h
}
