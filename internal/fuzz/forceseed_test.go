package fuzz

import (
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

func TestForceSeed(t *testing.T) {
	src := `
int main() {
    char b[8];
    read_input(b, 8L);
    printf("ok\n");
    return 0;
}`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Instrument: true})
	f := New(vm.New(bin, vm.Options{Coverage: true}), [][]byte{[]byte("seed")}, Options{Seed: 1})

	before := len(f.Queue())
	if !f.ForceSeed([]byte("interesting")) {
		t.Fatal("fresh input rejected")
	}
	if len(f.Queue()) != before+1 {
		t.Fatalf("queue = %d, want %d", len(f.Queue()), before+1)
	}
	if f.ForceSeed([]byte("interesting")) {
		t.Fatal("duplicate input accepted")
	}
	// The forced seed participates in fuzzing without issues.
	f.Run(300)
	if f.Stats().Execs < 300 {
		t.Fatalf("execs = %d", f.Stats().Execs)
	}
}

func TestStatsAccounting(t *testing.T) {
	src := `int main() { char b[4]; read_input(b, 4L); return 0; }`
	info := sema.MustCheck(parser.MustParse(src))
	bin := compiler.MustCompile(info, compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Instrument: true})
	f := New(vm.New(bin, vm.Options{Coverage: true}), nil, Options{Seed: 2})
	st := f.Run(100)
	if st.Execs < 100 || st.Cycles < 1 || st.Seeds < 1 {
		t.Fatalf("stats = %+v", st)
	}
}
