package fuzz

import (
	"bytes"
	"testing"
	"testing/quick"

	"compdiff/internal/compiler"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/vm"
)

func TestClassifyBuckets(t *testing.T) {
	cov := []byte{0, 1, 2, 3, 5, 9, 20, 60, 200}
	Classify(cov)
	want := []byte{0, 1, 2, 4, 8, 16, 32, 64, 128}
	if !bytes.Equal(cov, want) {
		t.Fatalf("got %v, want %v", cov, want)
	}
}

func TestHasNewBits(t *testing.T) {
	virgin := make([]byte, 8)
	cov := make([]byte, 8)
	cov[3] = 1
	if r := HasNewBits(virgin, cov); r != 2 {
		t.Fatalf("first hit = %d, want 2", r)
	}
	if r := HasNewBits(virgin, cov); r != 0 {
		t.Fatalf("repeat = %d, want 0", r)
	}
	cov[3] = 2 // changed hit-count bucket, same edge
	if r := HasNewBits(virgin, cov); r != 1 {
		t.Fatalf("bucket change = %d, want 1", r)
	}
}

func TestCountBits(t *testing.T) {
	if n := CountBits([]byte{0b101, 0, 0b11}); n != 4 {
		t.Fatalf("n = %d", n)
	}
}

func TestCovHashDistinguishesMaps(t *testing.T) {
	a := make([]byte, 16)
	b := make([]byte, 16)
	a[1] = 1
	b[2] = 1
	if CovHash(a) == CovHash(b) {
		t.Fatal("hash collision on distinct maps")
	}
	if CovHash(a) != CovHash(a) {
		t.Fatal("hash not deterministic")
	}
}

func TestMutatorDeterministicStage(t *testing.T) {
	mu := NewMutator(1, 64)
	data := []byte{1, 2, 3, 4}
	count := 0
	mu.Deterministic(data, func(m []byte) bool {
		if len(m) != len(data) {
			t.Fatalf("deterministic stage changed length: %d", len(m))
		}
		count++
		return true
	})
	// 32 bitflips + 4 byteflips + 64 arith + 36 interesting8 + 8 interesting32.
	if count != 32+4+64+36+8 {
		t.Fatalf("mutant count = %d", count)
	}
}

func TestMutatorRespectsMaxLen(t *testing.T) {
	f := func(seed int64, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		mu := NewMutator(seed, 32)
		for i := 0; i < 20; i++ {
			if m := mu.Havoc(data); len(m) == 0 || len(m) > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMutatorReproducible(t *testing.T) {
	a := NewMutator(7, 64)
	b := NewMutator(7, 64)
	data := []byte("seed input data")
	for i := 0; i < 50; i++ {
		if !bytes.Equal(a.Havoc(data), b.Havoc(data)) {
			t.Fatal("same RNG seed produced different mutants")
		}
	}
}

func TestSpliceBounds(t *testing.T) {
	mu := NewMutator(3, 16)
	a := bytes.Repeat([]byte{'a'}, 10)
	b := bytes.Repeat([]byte{'b'}, 10)
	for i := 0; i < 50; i++ {
		m := mu.Splice(a, b)
		if len(m) == 0 || len(m) > 16 {
			t.Fatalf("splice length %d", len(m))
		}
	}
}

// ---------------------------------------------------------------------------
// End-to-end fuzzing against an instrumented binary

func machineFor(t *testing.T, src string) *vm.Machine {
	t.Helper()
	info := sema.MustCheck(parser.MustParse(src))
	cfg := compiler.Config{Family: compiler.Clang, Opt: compiler.O1, Instrument: true}
	bin := compiler.MustCompile(info, cfg)
	return vm.New(bin, vm.Options{Coverage: true, StepLimit: 200_000})
}

const maze = `
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 4) { return 0; }
    if (buf[0] == 'F') {
        if (buf[1] == 'U') {
            if (buf[2] == 'Z') {
                if (buf[3] == 'Z') {
                    int* p = 0;
                    *p = 1;
                }
            }
        }
    }
    return 0;
}
`

func TestFuzzerFindsGuardedCrash(t *testing.T) {
	m := machineFor(t, maze)
	f := New(m, [][]byte{[]byte("AAAA")}, Options{Seed: 42})
	stats := f.Run(60_000)
	if stats.UniqueCrashes == 0 {
		t.Fatalf("no crash found after %d execs (seeds=%d)", stats.Execs, stats.Seeds)
	}
	found := false
	for _, c := range f.Crashes() {
		if bytes.HasPrefix(c.Input, []byte("FUZZ")) && c.Result.Exit == vm.SigSegv {
			found = true
		}
	}
	if !found {
		t.Fatalf("crash inputs: %v", f.Crashes())
	}
	if stats.Seeds < 3 {
		t.Fatalf("coverage guidance made no progress: %d seeds", stats.Seeds)
	}
}

func TestFuzzerCoverageGrowth(t *testing.T) {
	src := `
int main() {
    char buf[16];
    long n = read_input(buf, 16L);
    int score = 0;
    for (long i = 0; i < n; i++) {
        if (buf[i] >= 'a' && buf[i] <= 'z') { score++; }
        if (buf[i] == ' ') { score += 2; }
    }
    if (score > 8) { printf("rich\n"); }
    return 0;
}
`
	m := machineFor(t, src)
	f := New(m, [][]byte{{0}}, Options{Seed: 1})
	before := f.Stats().Seeds
	f.Run(5_000)
	if f.Stats().Seeds <= before {
		t.Fatal("queue did not grow")
	}
}

func TestOnExecHookSeesEveryInput(t *testing.T) {
	m := machineFor(t, maze)
	var hookCalls int64
	f := New(m, [][]byte{[]byte("seed")}, Options{
		Seed:   9,
		OnExec: func(in []byte, res *vm.Result) { hookCalls++ },
	})
	stats := f.Run(500)
	if hookCalls != stats.Execs {
		t.Fatalf("hook calls %d != execs %d", hookCalls, stats.Execs)
	}
}

func TestCrashDeduplication(t *testing.T) {
	// Every input longer than 3 bytes crashes at the same place: one
	// unique crash expected.
	src := `
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n > 3) {
        int* p = 0;
        *p = 1;
    }
    return 0;
}
`
	m := machineFor(t, src)
	f := New(m, [][]byte{[]byte("AAAAAA")}, Options{Seed: 5})
	f.Run(2_000)
	if n := len(f.Crashes()); n != 1 {
		t.Fatalf("unique crashes = %d, want 1", n)
	}
}

func TestFuzzerDeterministicCampaign(t *testing.T) {
	run := func() Stats {
		m := machineFor(t, maze)
		f := New(m, [][]byte{[]byte("AAAA")}, Options{Seed: 123})
		return f.Run(3_000)
	}
	a, b := run(), run()
	if a.Execs != b.Execs || a.Seeds != b.Seeds || a.UniqueCrashes != b.UniqueCrashes {
		t.Fatalf("campaign not reproducible: %+v vs %+v", a, b)
	}
}
