package telemetry

// Worker heartbeats and cross-worker snapshot merging — the telemetry
// half of the supervised-farm control plane. A worker process writes
// one Heartbeat atomically at every pool synchronization barrier; the
// supervisor reads it for liveness and for the execution watermark it
// reconciles against the durable checkpoint watermark after a crash
// (the gap between the two is the window a restart will replay). The
// supervisor's /stats endpoint merges each worker's latest plot
// snapshot with MergeSnapshots.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Heartbeat is one worker's barrier-consistent status record. Every
// field is taken at a pool synchronization barrier, so the counters
// are mutually consistent; Seq increases by one per barrier within a
// process, and SpentExecs is the cross-process watermark (cumulative
// per-shard budget, carried across resumes by the checkpoint).
type Heartbeat struct {
	Pid    int   `json:"pid"`
	UnixMs int64 `json:"unix_ms"`
	// Seq counts barriers within this process lifetime.
	Seq int64 `json:"seq"`
	// SpentExecs is the cumulative per-shard budget consumed across
	// process lifetimes — the watermark the supervisor reconciles with
	// the checkpoint manifest after an unclean exit.
	SpentExecs int64 `json:"spent_execs"`
	Execs      int64 `json:"execs"`
	DiffExecs  int64 `json:"diff_execs"`
	Queue      int   `json:"queue"`
	// UniqueDiffs / UniqueBuckets / UniqueCrashes are this worker's own
	// deduplicated counts; cross-worker dedup happens in the supervisor
	// from the checkpointed signature sets.
	UniqueDiffs     int   `json:"unique_diffs"`
	TotalDiffInputs int   `json:"total_diff_inputs"`
	UniqueBuckets   int   `json:"unique_buckets"`
	UniqueCrashes   int   `json:"unique_crashes"`
	PersistErrors   int64 `json:"persist_errors"`
	Shards          int   `json:"shards"`
	RetiredShards   int   `json:"retired_shards"`
}

// WriteHeartbeat atomically replaces the heartbeat file at path:
// write to a temp name in the same directory, then rename. A reader
// never sees a torn record, and a kill mid-write leaves the previous
// heartbeat in place — the same old-or-new guarantee the checkpoint
// protocol gives, minus the fsyncs (a heartbeat is advisory; losing
// the newest one costs nothing).
func WriteHeartbeat(path string, hb Heartbeat) error {
	data, err := json.Marshal(hb)
	if err != nil {
		return fmt.Errorf("telemetry: heartbeat encode: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: heartbeat: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("telemetry: heartbeat: %w", err)
	}
	return nil
}

// ReadHeartbeat loads the heartbeat at path. A missing file returns
// os.ErrNotExist (wrapped): the worker has not reached its first
// barrier yet.
func ReadHeartbeat(path string) (*Heartbeat, error) {
	data, err := os.ReadFile(filepath.Clean(path))
	if err != nil {
		return nil, err
	}
	var hb Heartbeat
	if err := json.Unmarshal(data, &hb); err != nil {
		return nil, fmt.Errorf("telemetry: heartbeat decode: %w", err)
	}
	return &hb, nil
}

// MergeSnapshots combines per-worker progress snapshots into one
// farm-wide view: counters and per-class outcome counts sum, the
// queue sums, elapsed time is the maximum (workers run concurrently,
// not back to back), the throughput is recomputed from the merged
// execs over that elapsed time, and the plateau is the minimum across
// workers — the farm last found a new path when its most recently
// successful worker did, so one worker at zero zeroes the farm.
// The Unique* fields sum — an upper bound on the true deduplicated
// counts, which only the checkpointed signature sets can give; the
// supervisor's /stats reports both. Shard lists concatenate in
// argument order.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var m Snapshot
	plateau := int64(-1)
	for _, s := range snaps {
		if plateau < 0 || s.PlateauExecs < plateau {
			plateau = s.PlateauExecs
		}
		m.Execs += s.Execs
		m.DiffExecs += s.DiffExecs
		m.Queue += s.Queue
		m.UniqueDiffs += s.UniqueDiffs
		m.TotalDiffInputs += s.TotalDiffInputs
		m.UniqueBuckets += s.UniqueBuckets
		m.UniqueCrashes += s.UniqueCrashes
		m.OK += s.OK
		m.Crash += s.Crash
		m.StepLimitHang += s.StepLimitHang
		m.Diff += s.Diff
		m.PersistErrors += s.PersistErrors
		m.Programs += s.Programs
		m.CompileDivergences += s.CompileDivergences
		m.ICEs += s.ICEs
		m.DiagMismatches += s.DiagMismatches
		if s.ElapsedMs > m.ElapsedMs {
			m.ElapsedMs = s.ElapsedMs
		}
		if s.UnixMs > m.UnixMs {
			m.UnixMs = s.UnixMs
		}
		m.Shards = append(m.Shards, s.Shards...)
	}
	if plateau > 0 {
		m.PlateauExecs = plateau
	}
	if m.ElapsedMs > 0 {
		m.ExecsPerSec = float64(m.Execs) / (float64(m.ElapsedMs) / 1000)
	}
	return m
}
