// Package telemetry is the campaign metrics layer: stdlib-only atomic
// counters, gauges, and lock-striped latency histograms, plus the
// AFL-style snapshot machinery (plot.jsonl) the fuzzing campaigns
// emit. The paper's evaluation (§4) reasons about CompDiff almost
// entirely through this kind of data — execs/sec overhead factors,
// timeout classification, diffs-per-budget — so every engine in this
// repo threads a set of these metrics through its hot path.
//
// Everything here is safe for concurrent use and cheap enough for
// per-execution updates: counters and gauges are single atomics, and
// histogram observations take one striped mutex chosen by value hash,
// so parallel workers rarely contend.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n and returns the new value.
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Inc increments the counter by one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the counter — only for restoring a checkpointed
// value before concurrent use resumes.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Value implements Var.
func (c *Counter) Value() any { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Value implements Var.
func (g *Gauge) Value() any { return g.v.Load() }

// Class is the outcome classification of one execution: the triage
// buckets a differential campaign needs to separate (crash vs. hang
// vs. silent diff vs. clean run).
type Class uint8

const (
	// ClassOK is a clean run: normal exit, no divergence.
	ClassOK Class = iota
	// ClassCrash is a crash-like exit (SIGSEGV/SIGFPE/SIGABRT or a
	// sanitizer abort).
	ClassCrash
	// ClassStepLimitHang is a step-limit exit — the VM analog of AFL's
	// hang/timeout bucket.
	ClassStepLimitHang
	// ClassDiff marks an input whose differential cross-check diverged
	// (the CompDiff oracle fired). At the campaign level it dominates
	// the other classes: a diverging input is counted here only.
	ClassDiff

	// NumClasses is the number of outcome classes.
	NumClasses = 4
)

// String names the class as it appears in snapshots and reports.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassCrash:
		return "crash"
	case ClassStepLimitHang:
		return "step-limit-hang"
	case ClassDiff:
		return "diff"
	default:
		return "unknown"
	}
}

// ClassCounters is one atomic counter per outcome class. Incremented
// exactly once per classified execution, the per-class values always
// sum to the number of executions observed.
type ClassCounters struct{ c [NumClasses]Counter }

// Inc counts one execution in class k.
func (cc *ClassCounters) Inc(k Class) {
	if int(k) < NumClasses {
		cc.c[k].Inc()
	}
}

// Get returns the count for class k.
func (cc *ClassCounters) Get(k Class) int64 {
	if int(k) >= NumClasses {
		return 0
	}
	return cc.c[k].Load()
}

// Snapshot returns all class counts at once.
func (cc *ClassCounters) Snapshot() [NumClasses]int64 {
	var out [NumClasses]int64
	for i := range out {
		out[i] = cc.c[i].Load()
	}
	return out
}

// Store overwrites all class counts — only for restoring a
// checkpointed snapshot before concurrent use resumes.
func (cc *ClassCounters) Store(counts [NumClasses]int64) {
	for i := range cc.c {
		cc.c[i].Store(counts[i])
	}
}

// Total is the sum over classes — the number of classified executions.
func (cc *ClassCounters) Total() int64 {
	var t int64
	for i := range cc.c {
		t += cc.c[i].Load()
	}
	return t
}

// Value implements Var: a name → count map.
func (cc *ClassCounters) Value() any {
	out := make(map[string]int64, NumClasses)
	for i := range cc.c {
		out[Class(i).String()] = cc.c[i].Load()
	}
	return out
}

// Histogram bucket layout: bucket i holds durations whose nanosecond
// value has bit length i, i.e. [2^(i-1), 2^i). 48 buckets cover up to
// ~3.25 days, far beyond any step-limited VM run.
const (
	histBuckets = 48
	histStripes = 8 // power of two
)

// Histogram is a lock-striped latency histogram with exponential
// buckets. Observations hash to one of histStripes independently
// locked stripes, so concurrent workers (the parallel suite layer
// runs k executions across a worker pool) rarely serialize on it;
// Snapshot merges the stripes.
type Histogram struct {
	stripes [histStripes]histStripe
}

type histStripe struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
	// Pad stripes apart so adjacent stripes do not share a cache line.
	_ [5]int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	// Value-hash striping: no shared state is touched picking a
	// stripe, and nanosecond-resolution samples spread well.
	s := &h.stripes[(uint64(v)*0x9e3779b97f4a7c15)>>61&(histStripes-1)]
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s.mu.Lock()
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.buckets[b]++
	s.mu.Unlock()
}

// HistogramSnapshot is a merged, immutable view of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64 // nanoseconds
	Min     int64 // nanoseconds; 0 when empty
	Max     int64 // nanoseconds
	Buckets [histBuckets]int64
}

// Snapshot merges all stripes into one consistent-enough view. Each
// stripe is internally consistent; cross-stripe skew is bounded by
// whatever ran during the snapshot itself.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var out HistogramSnapshot
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		if s.count > 0 {
			if out.Count == 0 || s.min < out.Min {
				out.Min = s.min
			}
			if s.max > out.Max {
				out.Max = s.max
			}
			out.Count += s.count
			out.Sum += s.sum
			for b := range s.buckets {
				out.Buckets[b] += s.buckets[b]
			}
		}
		s.mu.Unlock()
	}
	return out
}

// Restore overwrites the histogram with a checkpointed snapshot. The
// merged counts land in one stripe — striping is a contention
// optimization, not part of the observable distribution, so Snapshot
// of a restored histogram equals the snapshot it was restored from.
// Only for use before concurrent observation resumes.
func (h *Histogram) Restore(s HistogramSnapshot) {
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		st.count, st.sum, st.min, st.max = 0, 0, 0, 0
		st.buckets = [histBuckets]int64{}
		st.mu.Unlock()
	}
	st := &h.stripes[0]
	st.mu.Lock()
	st.count = s.Count
	st.sum = s.Sum
	st.min = s.Min
	st.max = s.Max
	st.buckets = s.Buckets
	st.mu.Unlock()
}

// Merge adds another snapshot into s (sharded campaigns merge their
// per-shard histograms into one pool-wide view).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for b := range s.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
}

// Mean is the average sample.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding it — an overestimate by at most 2x, which is all
// an exponential histogram promises.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, n := range s.Buckets {
		seen += n
		if seen >= rank {
			hi := int64(1) << uint(b)
			if hi-1 > s.Max {
				return time.Duration(s.Max)
			}
			return time.Duration(hi - 1)
		}
	}
	return time.Duration(s.Max)
}

// Value implements Var: a compact summary map.
func (h *Histogram) Value() any {
	s := h.Snapshot()
	return map[string]int64{
		"count":   s.Count,
		"sum_ns":  s.Sum,
		"min_ns":  s.Min,
		"max_ns":  s.Max,
		"mean_ns": int64(s.Mean()),
		"p50_ns":  int64(s.Quantile(0.50)),
		"p90_ns":  int64(s.Quantile(0.90)),
		"p99_ns":  int64(s.Quantile(0.99)),
	}
}
