package telemetry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "STATUS.json")

	if _, err := ReadHeartbeat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing heartbeat: got %v, want ErrNotExist", err)
	}

	hb := Heartbeat{Pid: 42, UnixMs: 1700000000000, Seq: 3, SpentExecs: 900,
		Execs: 1800, DiffExecs: 40, Queue: 12, UniqueDiffs: 2, TotalDiffInputs: 5,
		UniqueBuckets: 2, UniqueCrashes: 1, PersistErrors: 0, Shards: 2, RetiredShards: 0}
	if err := WriteHeartbeat(path, hb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != hb {
		t.Fatalf("round trip: got %+v, want %+v", *got, hb)
	}

	// Overwrite is atomic-replace: the new record fully supersedes the
	// old and no temp file lingers.
	hb.Seq, hb.SpentExecs = 4, 1200
	if err := WriteHeartbeat(path, hb); err != nil {
		t.Fatal(err)
	}
	got, err = ReadHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 4 || got.SpentExecs != 1200 {
		t.Fatalf("overwrite: got %+v", *got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// A torn/garbage file is a decode error, not a zero heartbeat.
	if err := os.WriteFile(path, []byte("{\"pid\": 42, \"un"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeartbeat(path); err == nil {
		t.Fatal("truncated heartbeat decoded without error")
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{UnixMs: 100, ElapsedMs: 2000, Execs: 1000, DiffExecs: 100,
		Queue: 5, UniqueDiffs: 2, TotalDiffInputs: 4, UniqueBuckets: 2, UniqueCrashes: 1,
		OK: 900, Crash: 50, StepLimitHang: 20, Diff: 30, PersistErrors: 1,
		PlateauExecs: 600, Shards: []ShardSnapshot{{Shard: 0}}}
	b := Snapshot{UnixMs: 150, ElapsedMs: 1000, Execs: 500, DiffExecs: 20,
		Queue: 3, UniqueDiffs: 1, TotalDiffInputs: 1, UniqueBuckets: 1, UniqueCrashes: 0,
		OK: 470, Crash: 10, StepLimitHang: 5, Diff: 15,
		Shards: []ShardSnapshot{{Shard: 0}, {Shard: 1}}}

	m := MergeSnapshots(a, b)
	if m.Execs != 1500 || m.DiffExecs != 120 || m.Queue != 8 ||
		m.UniqueDiffs != 3 || m.TotalDiffInputs != 5 || m.UniqueBuckets != 3 ||
		m.UniqueCrashes != 1 || m.PersistErrors != 1 {
		t.Fatalf("sums: %+v", m)
	}
	if m.ClassTotal() != m.Execs {
		t.Fatalf("merged classes sum to %d, execs %d", m.ClassTotal(), m.Execs)
	}
	// Workers run concurrently: elapsed is the max, not the sum, and
	// throughput is recomputed over that wall clock.
	if m.ElapsedMs != 2000 || m.UnixMs != 150 {
		t.Fatalf("elapsed=%d unix=%d", m.ElapsedMs, m.UnixMs)
	}
	if want := 1500 / 2.0; m.ExecsPerSec != want {
		t.Fatalf("ExecsPerSec = %v, want %v", m.ExecsPerSec, want)
	}
	// One worker still finding new paths means the farm is not
	// plateaued: the zero (not-plateaued) value wins over a's 600.
	if m.PlateauExecs != 0 {
		t.Fatalf("PlateauExecs = %d, want 0 (b is not plateaued)", m.PlateauExecs)
	}
	if len(m.Shards) != 3 {
		t.Fatalf("shards concatenate: got %d", len(m.Shards))
	}

	// When every worker is plateaued, the farm's plateau is the
	// shortest one — the most recent global discovery.
	b.PlateauExecs = 900
	if m := MergeSnapshots(a, b); m.PlateauExecs != 600 {
		t.Fatalf("all-plateaued merge: PlateauExecs = %d, want 600", m.PlateauExecs)
	}

	// Merging nothing is a zero snapshot.
	if z := MergeSnapshots(); z.Execs != 0 || z.ExecsPerSec != 0 {
		t.Fatalf("empty merge: %+v", z)
	}
}
