package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SuiteMetrics is the per-implementation view a differential suite
// feeds: every VM execution on every CompDiff binary is classified
// (ok / crash / step-limit-hang) and its latency recorded. All methods
// are safe for concurrent use — the parallel suite layer calls
// ObserveRun from its worker goroutines.
type SuiteMetrics struct {
	names []string
	impls []implMetrics
}

// implMetrics is one implementation's counters. The parallel suite
// layer assigns each worker a different implementation, so adjacent
// entries are updated by different goroutines concurrently; the pad
// keeps one implementation's hot counters off its neighbor's cache
// line (the interleaved Histogram separates entries further).
type implMetrics struct {
	outcomes ClassCounters
	_        [4]int64
	latency  Histogram
}

// NewSuiteMetrics creates metrics for the named implementations
// (suite order).
func NewSuiteMetrics(names []string) *SuiteMetrics {
	return &SuiteMetrics{
		names: append([]string(nil), names...),
		impls: make([]implMetrics, len(names)),
	}
}

// ObserveRun records one VM execution on implementation impl.
func (m *SuiteMetrics) ObserveRun(impl int, k Class, d time.Duration) {
	if m == nil || impl < 0 || impl >= len(m.impls) {
		return
	}
	im := &m.impls[impl]
	im.outcomes.Inc(k)
	im.latency.Observe(d)
}

// ImplNames returns the implementation names in suite order.
func (m *SuiteMetrics) ImplNames() []string { return m.names }

// ImplSummary is one implementation's aggregated run telemetry.
type ImplSummary struct {
	Name     string
	Outcomes [NumClasses]int64
	Latency  HistogramSnapshot
}

// Runs is the total number of VM executions observed.
func (s *ImplSummary) Runs() int64 {
	var t int64
	for _, n := range s.Outcomes {
		t += n
	}
	return t
}

// Summaries snapshots every implementation's outcome counts and
// latency histogram.
func (m *SuiteMetrics) Summaries() []ImplSummary {
	if m == nil {
		return nil
	}
	out := make([]ImplSummary, len(m.names))
	for i := range out {
		out[i] = ImplSummary{
			Name:     m.names[i],
			Outcomes: m.impls[i].outcomes.Snapshot(),
			Latency:  m.impls[i].latency.Snapshot(),
		}
	}
	return out
}

// MergeImplSummaries adds src into dst positionwise (shards share the
// implementation set, so position identifies the implementation). A
// nil dst is initialized from src.
func MergeImplSummaries(dst, src []ImplSummary) []ImplSummary {
	if dst == nil {
		dst = make([]ImplSummary, len(src))
		copy(dst, src)
		return dst
	}
	for i := range src {
		if i >= len(dst) {
			dst = append(dst, src[i])
			continue
		}
		for k := range dst[i].Outcomes {
			dst[i].Outcomes[k] += src[i].Outcomes[k]
		}
		dst[i].Latency.Merge(src[i].Latency)
	}
	return dst
}

// CampaignMetrics is one fuzzing campaign's (or one shard's) live
// counters: B_fuzz executions, CompDiff executions, per-class outcome
// counts, and the per-implementation suite metrics. Counters are
// updated on the fuzzing hot path (atomics only); snapshots are
// assembled elsewhere.
type CampaignMetrics struct {
	// Execs counts B_fuzz executions (one per generated input).
	Execs Counter
	// DiffExecs counts executions spent on the CompDiff binaries.
	DiffExecs Counter
	// Classes classifies every generated input into exactly one
	// outcome class, so the per-class counts always sum to Execs.
	Classes ClassCounters
	// Suite holds the per-implementation run telemetry.
	Suite *SuiteMetrics

	reg *Registry
}

// NewCampaignMetrics creates campaign metrics over the named CompDiff
// implementations and registers everything in a private registry.
func NewCampaignMetrics(implNames []string) *CampaignMetrics {
	m := &CampaignMetrics{Suite: NewSuiteMetrics(implNames)}
	reg := NewRegistry()
	reg.Register("campaign.execs", &m.Execs)
	reg.Register("campaign.diff_execs", &m.DiffExecs)
	reg.Register("campaign.outcomes", &m.Classes)
	for i, name := range implNames {
		im := &m.Suite.impls[i]
		reg.Register("impl."+name+".outcomes", &im.outcomes)
		reg.Register("impl."+name+".latency_ns", &im.latency)
	}
	m.reg = reg
	return m
}

// Registry exposes the campaign's metrics as an expvar-style registry.
func (m *CampaignMetrics) Registry() *Registry { return m.reg }

// Snapshot is one AFL-plot-style progress record. A campaign appends
// these to an in-memory series and, when a stats directory is
// configured, to <dir>/plot.jsonl (one JSON object per line). The
// per-class counts (OK, Crash, StepLimitHang, Diff) partition Execs.
type Snapshot struct {
	UnixMs          int64   `json:"unix_ms"`
	ElapsedMs       int64   `json:"elapsed_ms"`
	Execs           int64   `json:"execs"`
	ExecsPerSec     float64 `json:"execs_per_sec"`
	DiffExecs       int64   `json:"diff_execs"`
	Queue           int     `json:"queue"`
	UniqueDiffs     int     `json:"unique_diffs"`
	TotalDiffInputs int     `json:"total_diff_inputs"`
	// UniqueBuckets counts distinct divergence-fingerprint buckets —
	// the triage layer's deduplicated finding count, always <=
	// UniqueDiffs since the fingerprint coarsens the signature.
	UniqueBuckets int   `json:"unique_buckets"`
	UniqueCrashes int   `json:"unique_crashes"`
	OK            int64 `json:"ok"`
	Crash         int64 `json:"crash"`
	StepLimitHang int64 `json:"step_limit_hang"`
	Diff          int64 `json:"diff"`
	// PlateauExecs is the number of executions since the queue last
	// grew (AFL's "last new path" age) — pools report the smallest
	// per-shard value.
	PlateauExecs int64 `json:"plateau_execs"`
	// PersistErrors counts DiffStore persistence failures (disk-full,
	// permission loss): the campaign keeps running, but the on-disk
	// evidence is incomplete and reports should say so.
	PersistErrors int64           `json:"persist_errors,omitempty"`
	Shards        []ShardSnapshot `json:"shards,omitempty"`

	// Compile-stage oracle counters, set only by program-corpus
	// campaigns (zero and omitted in input-fuzzing campaigns). They are
	// deliberately separate fields rather than new outcome classes:
	// ClassCounters arrays are serialized in checkpoints, so growing
	// NumClasses would change that schema.
	Programs           int64 `json:"programs,omitempty"`
	CompileDivergences int   `json:"compile_divergences,omitempty"`
	ICEs               int   `json:"ices,omitempty"`
	DiagMismatches     int   `json:"diag_mismatches,omitempty"`

	// Evolutionary-campaign telemetry, set only in -evolve mode (same
	// omitempty discipline as the compile-stage block above).
	// Generation is the number of fully evaluated generations;
	// PassCoverage counts distinct (implementation, optimizer-pass)
	// pairs fired so far — the campaign's cumulative rewrite coverage.
	Generation   int     `json:"generation,omitempty"`
	BestFitness  float64 `json:"best_fitness,omitempty"`
	MeanFitness  float64 `json:"mean_fitness,omitempty"`
	PassCoverage int     `json:"pass_coverage,omitempty"`
}

// SetClasses fills the per-class fields from a ClassCounters snapshot.
func (s *Snapshot) SetClasses(c [NumClasses]int64) {
	s.OK = c[ClassOK]
	s.Crash = c[ClassCrash]
	s.StepLimitHang = c[ClassStepLimitHang]
	s.Diff = c[ClassDiff]
}

// ClassTotal sums the per-class counts; in every valid snapshot it
// equals Execs.
func (s *Snapshot) ClassTotal() int64 {
	return s.OK + s.Crash + s.StepLimitHang + s.Diff
}

// ShardSnapshot is one shard's state inside a pool snapshot.
type ShardSnapshot struct {
	Shard         int    `json:"shard"`
	Role          string `json:"role"` // "main" or "secondary", AFL -M/-S
	Execs         int64  `json:"execs"`
	Queue         int    `json:"queue"`
	UniqueDiffs   int    `json:"unique_diffs"`
	UniqueBuckets int    `json:"unique_buckets"`
	PlateauExecs  int64  `json:"plateau_execs"`
	Retired       bool   `json:"retired"`
}

// Recorder timestamps snapshots, keeps the in-memory series, and
// appends each one as a JSON line to <dir>/plot.jsonl when a
// directory is configured. Record is called from one goroutine at a
// time in practice (snapshot points are barriers or the campaign
// goroutine), but the recorder locks anyway so misuse cannot corrupt
// the series.
type Recorder struct {
	mu    sync.Mutex
	start time.Time
	snaps []Snapshot
	f     *os.File
}

// NewRecorder creates a recorder; with a non-empty dir, snapshots are
// appended to dir/plot.jsonl (the directory is created as needed).
func NewRecorder(dir string) (*Recorder, error) {
	r := &Recorder{start: time.Now()}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(filepath.Join(dir, "plot.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		r.f = f
	}
	return r, nil
}

// Record stamps the snapshot's wall-clock fields and rate, appends it
// to the series and the plot file, and returns the stamped snapshot.
// File-write errors are swallowed: losing a plot line must never kill
// a campaign (the in-memory series still has the snapshot).
func (r *Recorder) Record(s Snapshot) Snapshot {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := now.Sub(r.start)
	if elapsed < time.Millisecond {
		elapsed = time.Millisecond
	}
	s.UnixMs = now.UnixMilli()
	s.ElapsedMs = elapsed.Milliseconds()
	s.ExecsPerSec = float64(s.Execs) / elapsed.Seconds()
	r.snaps = append(r.snaps, s)
	if r.f != nil {
		if line, err := json.Marshal(s); err == nil {
			line = append(line, '\n')
			_, _ = r.f.Write(line)
		}
	}
	return s
}

// Restore overwrites the suite metrics with checkpointed summaries
// (matched positionwise to the implementation set). Only for use
// before concurrent observation resumes.
func (m *SuiteMetrics) Restore(sums []ImplSummary) {
	if m == nil {
		return
	}
	for i := range m.impls {
		if i >= len(sums) {
			break
		}
		m.impls[i].outcomes.Store(sums[i].Outcomes)
		m.impls[i].latency.Restore(sums[i].Latency)
	}
}

// Sync flushes the plot file to disk, if any — campaigns call it
// after a final snapshot so an imminent process exit cannot lose the
// tail line.
func (r *Recorder) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	return r.f.Sync()
}

// Snapshots returns a copy of the recorded series.
func (r *Recorder) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Snapshot(nil), r.snaps...)
}

// Close closes the plot file, if any.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
