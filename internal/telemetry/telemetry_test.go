package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	if got := c.Inc(); got != 1 {
		t.Fatalf("Inc = %d, want 1", got)
	}
	if got := c.Add(41); got != 42 {
		t.Fatalf("Add = %d, want 42", got)
	}
	if c.Load() != 42 {
		t.Fatalf("Load = %d", c.Load())
	}
	var g Gauge
	g.Set(-7)
	if g.Load() != -7 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestClassCountersPartition(t *testing.T) {
	var cc ClassCounters
	for i := 0; i < 5; i++ {
		cc.Inc(ClassOK)
	}
	cc.Inc(ClassCrash)
	cc.Inc(ClassStepLimitHang)
	cc.Inc(ClassDiff)
	cc.Inc(Class(200)) // out of range: ignored, not a panic
	snap := cc.Snapshot()
	if snap[ClassOK] != 5 || snap[ClassCrash] != 1 || snap[ClassStepLimitHang] != 1 || snap[ClassDiff] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if cc.Total() != 8 {
		t.Fatalf("total = %d, want 8", cc.Total())
	}
	if cc.Get(ClassOK) != 5 || cc.Get(Class(200)) != 0 {
		t.Fatal("Get mismatch")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassOK:            "ok",
		ClassCrash:         "crash",
		ClassStepLimitHang: "step-limit-hang",
		ClassDiff:          "diff",
		Class(99):          "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	samples := []time.Duration{
		100 * time.Nanosecond,
		200 * time.Nanosecond,
		3 * time.Microsecond,
		50 * time.Microsecond,
		2 * time.Millisecond,
	}
	var sum int64
	for _, d := range samples {
		h.Observe(d)
		sum += int64(d)
	}
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	if s.Min != 100 || s.Max != int64(2*time.Millisecond) {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if got := s.Mean(); got != time.Duration(sum/int64(len(samples))) {
		t.Fatalf("mean = %v", got)
	}
	// The median bucket upper bound must be >= the true median and
	// within 2x of it (exponential bucket guarantee).
	med := s.Quantile(0.5)
	if med < 200*time.Nanosecond || med > 2*3*time.Microsecond {
		t.Fatalf("p50 = %v out of plausible range", med)
	}
	if q := s.Quantile(1.0); q > time.Duration(s.Max) {
		t.Fatalf("p100 = %v exceeds max %d", q, s.Max)
	}
	// Negative durations clamp to zero instead of corrupting buckets.
	h.Observe(-time.Second)
	if s2 := h.Snapshot(); s2.Count != s.Count+1 || s2.Min != 0 {
		t.Fatalf("negative observe: count=%d min=%d", s2.Count, s2.Min)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 || s.Min != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	b.Observe(10 * time.Nanosecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.Min != 10 || sa.Max != int64(time.Millisecond) {
		t.Fatalf("merged = %+v", sa)
	}
	var empty HistogramSnapshot
	sa.Merge(empty) // merging empty is a no-op
	if sa.Count != 3 {
		t.Fatal("empty merge changed count")
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(3)
	reg.Register("b.second", &c)
	reg.Register("a.first", Func(func() any { return "v" }))
	reg.Register("b.second", &c) // re-register keeps position, no dup

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if obj["b.second"].(float64) != 3 || obj["a.first"].(string) != "v" {
		t.Fatalf("obj = %v", obj)
	}
	// Registration order, not lexical order.
	out := buf.String()
	if strings.Index(out, "b.second") > strings.Index(out, "a.first") {
		t.Fatalf("registration order not preserved: %s", out)
	}
}

func TestSuiteMetricsSummaries(t *testing.T) {
	m := NewSuiteMetrics([]string{"gcc -O0", "clang -O2"})
	m.ObserveRun(0, ClassOK, time.Microsecond)
	m.ObserveRun(0, ClassStepLimitHang, 5*time.Microsecond)
	m.ObserveRun(1, ClassCrash, 2*time.Microsecond)
	m.ObserveRun(5, ClassOK, time.Microsecond)  // out of range: ignored
	m.ObserveRun(-1, ClassOK, time.Microsecond) // out of range: ignored

	sums := m.Summaries()
	if len(sums) != 2 {
		t.Fatalf("len = %d", len(sums))
	}
	if sums[0].Name != "gcc -O0" || sums[0].Runs() != 2 || sums[0].Outcomes[ClassStepLimitHang] != 1 {
		t.Fatalf("impl 0 = %+v", sums[0])
	}
	if sums[1].Runs() != 1 || sums[1].Outcomes[ClassCrash] != 1 || sums[1].Latency.Count != 1 {
		t.Fatalf("impl 1 = %+v", sums[1])
	}

	merged := MergeImplSummaries(nil, sums)
	merged = MergeImplSummaries(merged, sums)
	if merged[0].Runs() != 4 || merged[1].Latency.Count != 2 {
		t.Fatalf("merged = %+v", merged)
	}
}

func TestCampaignMetricsRegistry(t *testing.T) {
	m := NewCampaignMetrics([]string{"gcc -O0"})
	m.Execs.Add(10)
	m.DiffExecs.Add(20)
	m.Classes.Inc(ClassDiff)
	m.Suite.ObserveRun(0, ClassOK, time.Microsecond)

	var buf bytes.Buffer
	if err := m.Registry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{
		"campaign.execs", "campaign.diff_execs", "campaign.outcomes",
		"impl.gcc -O0.outcomes", "impl.gcc -O0.latency_ns",
	} {
		if _, ok := obj[key]; !ok {
			t.Errorf("registry missing %q (have %v)", key, buf.String())
		}
	}
}

func TestRecorderPlotFile(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		snap := Snapshot{Execs: i * 100, Queue: int(i)}
		snap.SetClasses([NumClasses]int64{i * 99, 0, 0, i})
		got := r.Record(snap)
		if got.ExecsPerSec <= 0 {
			t.Fatalf("snapshot %d: execs_per_sec = %v", i, got.ExecsPerSec)
		}
		if got.ClassTotal() != got.Execs {
			t.Fatalf("snapshot %d: classes sum %d != execs %d", i, got.ClassTotal(), got.Execs)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "plot.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	var prev Snapshot
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if s.Execs < prev.Execs || s.ElapsedMs < prev.ElapsedMs {
			t.Fatalf("snapshots not monotonic: %+v after %+v", s, prev)
		}
		prev = s
		lines++
	}
	if lines != 3 {
		t.Fatalf("plot.jsonl has %d lines, want 3", lines)
	}
	if got := r.Snapshots(); len(got) != 3 {
		t.Fatalf("in-memory series has %d snapshots", len(got))
	}
}

func TestRecorderMemoryOnly(t *testing.T) {
	r, err := NewRecorder("")
	if err != nil {
		t.Fatal(err)
	}
	r.Record(Snapshot{Execs: 1})
	if len(r.Snapshots()) != 1 {
		t.Fatal("memory-only recorder lost the snapshot")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
