package telemetry

import (
	"testing"
	"time"
)

func BenchmarkObserveRun(b *testing.B) {
	m := NewSuiteMetrics([]string{"a", "b", "c", "d"})
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.ObserveRun(i&3, ClassOK, time.Duration(i)*100)
			i++
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

func BenchmarkClassInc(b *testing.B) {
	var cc ClassCounters
	for i := 0; i < b.N; i++ {
		cc.Inc(ClassOK)
	}
}
