package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Var is a named metric a Registry can export — the expvar contract,
// reimplemented locally so campaigns can own private registries
// instead of polluting one process-global namespace.
type Var interface {
	Value() any
}

// Func adapts a closure into a Var.
type Func func() any

// Value implements Var.
func (f Func) Value() any { return f() }

// Registry is an insertion-ordered collection of named metrics. It is
// the in-memory counterpart of plot.jsonl: where the snapshot stream
// answers "how did the campaign evolve", the registry answers "where
// is it right now", as one JSON object.
type Registry struct {
	mu    sync.Mutex
	names []string
	vars  map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: map[string]Var{}}
}

// Register adds (or replaces) a named metric. First registration
// fixes the name's position in dump order.
func (r *Registry) Register(name string, v Var) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vars[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vars[name] = v
}

// Do calls f for every registered metric in registration order.
func (r *Registry) Do(f func(name string, v Var)) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	vars := make([]Var, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		f(n, vars[i])
	}
}

// WriteJSON dumps every metric as one JSON object in registration
// order — the expvar-style hook: point it at an HTTP response, a log
// file, or a debug console.
func (r *Registry) WriteJSON(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteByte('{')
	first := true
	var encErr error
	r.Do(func(name string, v Var) {
		if encErr != nil {
			return
		}
		val, err := json.Marshal(v.Value())
		if err != nil {
			encErr = fmt.Errorf("telemetry: marshal %q: %w", name, err)
			return
		}
		key, _ := json.Marshal(name)
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.Write(key)
		buf.WriteByte(':')
		buf.Write(val)
	})
	if encErr != nil {
		return encErr
	}
	buf.WriteString("}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
