package juliet

import "fmt"

// Memory-error CWEs: 121, 122, 124, 126, 127, 415, 416, 590. The
// variant axes are chosen so Table 3's structure emerges mechanically:
//
//   - literal-index flaws: visible to the syntactic static tier;
//   - pointer-arithmetic constant offsets: visible to the dataflow
//     tiers (coverity, infer) only;
//   - helper-function flaws: invisible to all static tiers;
//   - input-derived indexes: coverity's tainted-scalar territory;
//   - "propagating" flaws corrupt state that reaches the output —
//     CompDiff's territory (the victim differs per frame/heap layout);
//   - "silent" flaws corrupt memory nothing ever reads — ASan's
//     exclusive territory;
//   - intra-object flaws stay inside one object — ASan's blind spot,
//     CompDiff's unique catch when fed from uninitialized memory.

// --------------------------------------------------------------- CWE-121

func genStackOverflow(cwe string, n int) []Case {
	direct := tcase{
		tag: "literal",
		bad: func(p *params) string {
			return stackWriteProg(p, fmt.Sprintf("data[%d] = (char)%d;", p.size+p.off-1, p.val))
		},
		good: func(p *params) string {
			return stackWriteProg(p, fmt.Sprintf("data[%d] = (char)%d;", p.size-1, p.val))
		},
	}
	ptrArith := tcase{
		tag: "ptrarith",
		bad: func(p *params) string {
			return stackWriteProg(p, fmt.Sprintf("*(data + %d) = (char)%d;", p.size+p.off-1, p.val))
		},
		good: func(p *params) string {
			return stackWriteProg(p, fmt.Sprintf("*(data + %d) = (char)%d;", p.size-1, p.val))
		},
	}
	helper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return stackHelperProg(p, p.size+p.off-1)
		},
		good: func(p *params) string {
			return stackHelperProg(p, p.size-1)
		},
	}
	tainted := tcase{
		tag: "tainted",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int guard_%d = %d;
    char data[%d];
    int spare = %d;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L);
    data[idx] = (char)%d;
    printf("%%d %%d %%c\n", guard_%d, spare, data[0]);
    return 0;
}`, p.seq, p.val, p.size, p.val+1, p.size, p.val, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int guard_%d = %d;
    char data[%d];
    int spare = %d;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L) %% %d;
    if (idx < 0) { idx = 0; }
    data[idx] = (char)%d;
    printf("%%d %%d %%c\n", guard_%d, spare, data[0]);
    return 0;
}`, p.seq, p.val, p.size, p.val+1, p.size, p.size, p.val, p.seq)
		},
		input: func(p *params) []byte { return []byte{byte(p.size + p.off - 1)} },
	}
	silent := tcase{
		tag:   "silent",
		bad:   silentStackBad,
		good:  silentStackGood,
		input: func(p *params) []byte { return []byte{byte(p.size + p.off - 1)} },
	}
	intra := tcase{
		tag: "intra",
		bad: func(p *params) string {
			// memcpy overfills the buf field from uninitialized source
			// bytes, corrupting the adjacent tag *inside* the struct:
			// ASan-blind, static-blind, unstable (the copied garbage is
			// the implementation's fill pattern).
			return fmt.Sprintf(`
struct Pair%d {
    char buf[%d];
    int tag;
};
int main() {
    char src[64];
    struct Pair%d s;
    s.tag = %d;
    memcpy(s.buf, src, %d);
    printf("tag=%%d\n", s.tag);
    return 0;
}`, p.seq, pad4(p.size), p.seq, p.val, pad4(p.size)+4)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
struct Pair%d {
    char buf[%d];
    int tag;
};
int main() {
    char src[64];
    memset(src, 65, 64L);
    struct Pair%d s;
    s.tag = %d;
    memcpy(s.buf, src, %d);
    printf("tag=%%d\n", s.tag);
    return 0;
}`, p.seq, pad4(p.size), p.seq, p.val, pad4(p.size))
		},
	}
	return emit(cwe, n, []weighted{
		{direct, 2}, {ptrArith, 4}, {helper, 3}, {tainted, 1}, {silent, 9}, {intra, 1},
	})
}

// pad4 rounds up to 4 so the struct's int field sits right after buf.
func pad4(n int) int { return (n + 3) &^ 3 }

// stackWriteProg: a frame with several printed locals around a byte
// buffer; `write` is the flaw site. The out-of-bounds victim depends
// on the implementation's slot ordering, so corruption propagates to
// the output differently per binary.
func stackWriteProg(p *params, write string) string {
	return fmt.Sprintf(`
int main() {
    int guard_%d = %d;
    char data[%d];
    int spare = %d;
    long wide = %dL;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    %s
    printf("%%d %%d %%ld %%c\n", guard_%d, spare, wide, data[0]);
    return 0;
}`, p.seq, p.val, p.size, p.val+1, p.val*3, p.size, write, p.seq)
}

func stackHelperProg(p *params, idx int) string {
	return fmt.Sprintf(`
void put_at(char* p, int i, int v) {
    p[i] = (char)v;
}
int main() {
    int guard_%d = %d;
    char data[%d];
    int spare = %d;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    put_at(data, %d, %d);
    printf("%%d %%d %%c\n", guard_%d, spare, data[0]);
    return 0;
}`, p.seq, p.val, p.size, p.val+1, p.size, idx, p.val, p.seq)
}

// silentStackProg (bad) writes out of bounds into memory that is
// never read again: every implementation prints the same constant
// line, so only a redzone-based tool sees the flaw. The good variant
// validates the index through a helper and writes directly — safe,
// but the tainted-scalar heuristic cannot see the helper's bounds
// check, which is where the static FPs on this class come from.
func silentStackBad(p *params) string {
	return fmt.Sprintf(`
void scribble(char* p, int i) {
    p[i] = 42;
}
int main() {
    char data[%d];
    long spare_%d;
    spare_%d = 0;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L);
    scribble(data, idx);
    printf("done %%ld\n", spare_%d & 0L);
    return 0;
}`, p.size, p.seq, p.seq, p.size, p.seq)
}

func silentStackGood(p *params) string {
	return fmt.Sprintf(`
int index_ok(int i, int n) {
    if (i >= 0) {
        if (i < n) { return 1; }
    }
    return 0;
}
int main() {
    char data[%d];
    long spare_%d;
    spare_%d = 0;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L);
    if (index_ok(idx, %d)) {
        data[idx] = 42;
    }
    printf("done %%ld\n", spare_%d & 0L);
    return 0;
}`, p.size, p.seq, p.seq, p.size, p.size, p.seq)
}

// --------------------------------------------------------------- CWE-122

func genHeapOverflow(cwe string, n int) []Case {
	// Writing ~24 bytes past a chunk lands in the *next* chunk's data
	// under one allocator personality and in its header gap under the
	// other: printed victims diverge.
	propagating := func(flavor string) tcase {
		return tcase{
			tag: "prop" + flavor,
			bad: func(p *params) string {
				off := 24 + p.seq%4
				site := fmt.Sprintf("a[%d] = 88;", off)
				if flavor == "ptr" {
					site = fmt.Sprintf("*(a + %d) = 88;", off)
				} else if flavor == "helper" {
					site = fmt.Sprintf("poke(a, %d);", off)
				}
				return heapNeighborProg(p, site, flavor == "helper")
			},
			good: func(p *params) string {
				site := fmt.Sprintf("a[%d] = 88;", p.size-1)
				if flavor == "ptr" {
					site = fmt.Sprintf("*(a + %d) = 88;", p.size-1)
				} else if flavor == "helper" {
					site = fmt.Sprintf("poke(a, %d);", p.size-1)
				}
				return heapNeighborProg(p, site, flavor == "helper")
			},
		}
	}
	silent := tcase{
		tag: "silent",
		bad: func(p *params) string {
			// Write just past the requested size but inside the
			// 16-byte-rounded chunk: redzones see it, nothing else.
			sz := p.size
			if sz%16 == 0 {
				sz++
			}
			return heapSilentProg(p, sz, sz)
		},
		good: func(p *params) string {
			sz := p.size
			if sz%16 == 0 {
				sz++
			}
			return heapSilentProg(p, sz, sz-1)
		},
	}
	sizeofBait := tcase{
		tag: "szbait",
		bad: func(p *params) string {
			return heapNeighborProg(p, fmt.Sprintf("a[%d] = 88;", 24+p.seq%4), false)
		},
		good: func(p *params) string {
			// Correct code that copies a pointer value with
			// memcpy(dst, src, sizeof(char*)) — the syntactic tier's
			// classic "suspicious sizeof" false positive.
			return fmt.Sprintf(`
int main() {
    char* a = (char*)malloc(%d);
    if (a == 0) { return 1; }
    a[0] = 'x';
    char* held = 0;
    memcpy((char*)&held, (char*)&a, sizeof(char*));
    held[0] = 'y';
    printf("%%c\n", a[0]);
    free(a);
    return 0;
}`, p.size)
		},
	}
	return emit(cwe, n, []weighted{
		{propagating("idx"), 2}, {propagating("ptr"), 4}, {propagating("helper"), 3},
		{silent, 10}, {sizeofBait, 1},
	})
}

func heapNeighborProg(p *params, site string, withHelper bool) string {
	helper := ""
	if withHelper {
		helper = "void poke(char* p, int i) {\n    p[i] = 88;\n}\n"
	}
	return fmt.Sprintf(`%s
int main() {
    char* a = (char*)malloc(%d);
    char* b = (char*)malloc(8L);
    if (a == 0 || b == 0) { return 1; }
    for (int i = 0; i < %d; i++) { a[i] = (char)(65 + i); }
    for (int i = 0; i < 7; i++) { b[i] = (char)(48 + i); }
    b[7] = '\0';
    %s
    printf("%%s %%c\n", b, a[0]);
    free(a);
    free(b);
    return 0;
}`, helper, p.size, p.size, site)
}

func heapSilentProg(p *params, alloc, idx int) string {
	return fmt.Sprintf(`
void poke(char* p, int i) {
    p[i] = 42;
}
int main() {
    char* a = (char*)malloc(%d);
    if (a == 0) { return 1; }
    for (int i = 0; i < %d; i++) { a[i] = (char)(65 + i); }
    poke(a, %d);
    printf("ok %%c\n", a[0]);
    free(a);
    return 0;
}`, alloc, alloc, idx)
}

// --------------------------------------------------------------- CWE-124

func genUnderwrite(cwe string, n int) []Case {
	direct := tcase{
		tag: "literal",
		bad: func(p *params) string {
			return underwriteProg(p, fmt.Sprintf("data[0 - %d] = (char)%d;", p.off, p.val))
		},
		good: func(p *params) string {
			return underwriteProg(p, fmt.Sprintf("data[0] = (char)%d;", p.val))
		},
	}
	ptrArith := tcase{
		tag: "ptrarith",
		bad: func(p *params) string {
			return underwriteProg(p, fmt.Sprintf("*(data + (0 - %d)) = (char)%d;", p.off, p.val))
		},
		good: func(p *params) string {
			return underwriteProg(p, fmt.Sprintf("*(data + 0) = (char)%d;", p.val))
		},
	}
	helper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return underwriteHelperProg(p, -p.off)
		},
		good: func(p *params) string {
			return underwriteHelperProg(p, 0)
		},
	}
	heapUnder := tcase{
		tag: "heap",
		bad: func(p *params) string {
			// Underwriting past the chunk header hits the previous
			// chunk's bytes at personality-dependent distances.
			return fmt.Sprintf(`
void stamp(char* p, int i) {
    p[i] = 35;
}
int main() {
    char* first = (char*)malloc(16L);
    char* second = (char*)malloc(16L);
    if (first == 0 || second == 0) { return 1; }
    for (int i = 0; i < 15; i++) { first[i] = (char)(97 + i); }
    first[15] = '\0';
    stamp(second, 0 - %d);
    printf("%%s\n", first);
    free(second);
    free(first);
    return 0;
}`, 9+p.seq%8)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
void stamp(char* p, int i) {
    p[i] = 35;
}
int main() {
    char* first = (char*)malloc(16L);
    char* second = (char*)malloc(16L);
    if (first == 0 || second == 0) { return 1; }
    for (int i = 0; i < 15; i++) { first[i] = (char)(97 + i); }
    first[15] = '\0';
    stamp(second, %d);
    printf("%%s\n", first);
    free(second);
    free(first);
    return 0;
}`, p.seq%16)
		},
	}
	silent := tcase{
		tag: "silent",
		bad: func(p *params) string {
			return fmt.Sprintf(`
void put_at(char* p, int i, int v) {
    p[i] = (char)v;
}
int main() {
    long pad_%d;
    char data[%d];
    pad_%d = 0;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L) - 256;
    put_at(data, idx, 42);
    printf("done %%ld\n", pad_%d & 0L);
    return 0;
}`, p.seq, p.size, p.seq, p.size, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int index_ok(int i, int n) {
    if (i >= 0) {
        if (i < n) { return 1; }
    }
    return 0;
}
int main() {
    long pad_%d;
    char data[%d];
    pad_%d = 0;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L) - 256;
    if (index_ok(idx, %d)) {
        data[idx] = 42;
    }
    printf("done %%ld\n", pad_%d & 0L);
    return 0;
}`, p.seq, p.size, p.seq, p.size, p.size, p.seq)
		},
		input: func(p *params) []byte { return []byte{byte(256 - p.off)} },
	}
	return emit(cwe, n, []weighted{
		{direct, 2}, {ptrArith, 4}, {helper, 3}, {heapUnder, 3}, {silent, 8},
	})
}

func underwriteProg(p *params, site string) string {
	return fmt.Sprintf(`
int main() {
    long lead_%d = %dL;
    char data[%d];
    int tail = %d;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    %s
    printf("%%ld %%d %%c\n", lead_%d, tail, data[0]);
    return 0;
}`, p.seq, p.val*7, p.size, p.val, p.size, site, p.seq)
}

func underwriteHelperProg(p *params, idx int) string {
	return fmt.Sprintf(`
void put_at(char* p, int i, int v) {
    p[i] = (char)v;
}
int main() {
    long lead_%d = %dL;
    char data[%d];
    int tail = %d;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    put_at(data, %d, %d);
    printf("%%ld %%d %%c\n", lead_%d, tail, data[0]);
    return 0;
}`, p.seq, p.val*7, p.size, p.val, p.size, idx, p.val, p.seq)
}

func silentUnderwriteProg(p *params, idx int) string {
	return fmt.Sprintf(`
void put_at(char* p, int i, int v) {
    p[i] = (char)v;
}
int main() {
    long pad_%d;
    char data[%d];
    pad_%d = 0;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    put_at(data, %d, 42);
    printf("done %%ld\n", pad_%d & 0L);
    return 0;
}`, p.seq, p.size, p.seq, p.size, idx, p.seq)
}

// --------------------------------------------------------------- CWE-126

func genOverread(cwe string, n int) []Case {
	direct := tcase{
		tag: "literal",
		bad: func(p *params) string {
			return overreadProg(p, fmt.Sprintf("int got = data[%d];", p.size+p.off-1))
		},
		good: func(p *params) string {
			return overreadProg(p, fmt.Sprintf("int got = data[%d];", p.size-1))
		},
	}
	ptrArith := tcase{
		tag: "ptrarith",
		bad: func(p *params) string {
			return overreadProg(p, fmt.Sprintf("int got = *(data + %d);", p.size+p.off-1))
		},
		good: func(p *params) string {
			return overreadProg(p, fmt.Sprintf("int got = *(data + %d);", p.size-1))
		},
	}
	helper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return overreadHelperProg(p, p.size+p.off-1)
		},
		good: func(p *params) string {
			return overreadHelperProg(p, p.size-1)
		},
	}
	strscan := tcase{
		tag: "strlen",
		bad: func(p *params) string {
			// The buffer is filled completely, with no terminator:
			// strlen runs into neighboring memory whose contents are
			// layout- and fill-dependent.
			return fmt.Sprintf(`
long measure(char* s) {
    return strlen(s);
}
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i %% 26); }
    printf("%%ld\n", measure(data));
    return 0;
}`, p.size, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
long measure(char* s) {
    return strlen(s);
}
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i %% 26); }
    data[%d] = '\0';
    printf("%%ld\n", measure(data));
    return 0;
}`, p.size, p.size-1, p.size-1)
		},
	}
	silent := tcase{
		tag: "silent",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int get_at(char* p, int i) {
    return p[i];
}
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L);
    int got = get_at(data, idx);
    printf("done %%d\n", got & 0);
    return 0;
}`, p.size, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int index_ok(int i, int n) {
    if (i >= 0) {
        if (i < n) { return 1; }
    }
    return 0;
}
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int idx = input_byte(0L);
    int got = 0;
    if (index_ok(idx, %d)) {
        got = data[idx];
    }
    printf("done %%d\n", got & 0);
    return 0;
}`, p.size, p.size, p.size)
		},
		input: func(p *params) []byte { return []byte{byte(p.size + p.off - 1)} },
	}
	return emit(cwe, n, []weighted{
		{direct, 2}, {ptrArith, 4}, {helper, 4}, {strscan, 3}, {silent, 7},
	})
}

func overreadProg(p *params, site string) string {
	return fmt.Sprintf(`
int main() {
    int before_%d = %d;
    char data[%d];
    long after = %dL;
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    %s
    printf("%%d %%d %%ld\n", got, before_%d, after);
    return 0;
}`, p.seq, p.val, p.size, p.val*11, p.size, site, p.seq)
}

func overreadHelperProg(p *params, idx int) string {
	return fmt.Sprintf(`
int get_at(char* p, int i) {
    return p[i];
}
int main() {
    int before_%d = %d;
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    printf("%%d %%d\n", get_at(data, %d), before_%d);
    return 0;
}`, p.seq, p.val, p.size, p.size, idx, p.seq)
}

func silentOverreadProg(p *params, idx int) string {
	return fmt.Sprintf(`
int get_at(char* p, int i) {
    return p[i];
}
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int got = get_at(data, %d);
    printf("done %%d\n", got & 0);
    return 0;
}`, p.size, p.size, idx)
}

// --------------------------------------------------------------- CWE-127

func genUnderread(cwe string, n int) []Case {
	direct := tcase{
		tag: "literal",
		bad: func(p *params) string {
			return underreadProg(p, fmt.Sprintf("int got = data[0 - %d];", p.off))
		},
		good: func(p *params) string {
			return underreadProg(p, "int got = data[0];")
		},
	}
	ptrArith := tcase{
		tag: "ptrarith",
		bad: func(p *params) string {
			return underreadProg(p, fmt.Sprintf("int got = *(data + (0 - %d));", p.off))
		},
		good: func(p *params) string {
			return underreadProg(p, "int got = *(data + 0);")
		},
	}
	helper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return underreadHelperProg(p, -p.off)
		},
		good: func(p *params) string {
			return underreadHelperProg(p, 0)
		},
	}
	heapUnder := tcase{
		tag: "heap",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int peek(char* p, int i) {
    return p[i];
}
int main() {
    char* a = (char*)malloc(16L);
    if (a == 0) { return 1; }
    for (int i = 0; i < 16; i++) { a[i] = (char)(65 + i); }
    printf("%%d\n", peek(a, 0 - %d));
    free(a);
    return 0;
}`, 1+p.seq%12)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int peek(char* p, int i) {
    return p[i];
}
int main() {
    char* a = (char*)malloc(16L);
    if (a == 0) { return 1; }
    for (int i = 0; i < 16; i++) { a[i] = (char)(65 + i); }
    printf("%%d\n", peek(a, %d));
    free(a);
    return 0;
}`, p.seq%16)
		},
	}
	silent := tcase{
		tag: "silent",
		bad: func(p *params) string {
			return silentUnderreadProg(p, -p.off)
		},
		good: func(p *params) string {
			return silentUnderreadProg(p, 0)
		},
	}
	return emit(cwe, n, []weighted{
		{direct, 2}, {ptrArith, 4}, {helper, 4}, {heapUnder, 3}, {silent, 7},
	})
}

func underreadProg(p *params, site string) string {
	return fmt.Sprintf(`
int main() {
    long lead_%d = %dL;
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    %s
    printf("%%d %%ld\n", got, lead_%d);
    return 0;
}`, p.seq, p.val*5, p.size, p.size, site, p.seq)
}

func underreadHelperProg(p *params, idx int) string {
	return fmt.Sprintf(`
int get_at(char* p, int i) {
    return p[i];
}
int main() {
    long lead_%d = %dL;
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    printf("%%d %%ld\n", get_at(data, %d), lead_%d);
    return 0;
}`, p.seq, p.val*5, p.size, p.size, idx, p.seq)
}

func silentUnderreadProg(p *params, idx int) string {
	return fmt.Sprintf(`
int get_at(char* p, int i) {
    return p[i];
}
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)(65 + i); }
    int got = get_at(data, %d);
    printf("done %%d\n", got & 0);
    return 0;
}`, p.size, p.size, idx)
}

// --------------------------------------------------------------- CWE-415

func genDoubleFree(cwe string, n int) []Case {
	direct := tcase{
		tag: "direct",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    p[0] = 'a';
    free(p);
    free(p);
    printf("done\n");
    return 0;
}`, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    p[0] = 'a';
    free(p);
    printf("done\n");
    return 0;
}`, p.size)
		},
	}
	conditional := tcase{
		tag: "cond",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    p[0] = 'a';
    int mode = input_byte(0L);
    if (mode > 0) {
        free(p);
    }
    free(p);
    printf("done %%d\n", mode & 0);
    return 0;
}`, p.size)
		},
		good: func(p *params) string {
			// Correct: the second free only runs when the first did
			// not. Path-insensitive checkers still see two frees — the
			// characteristic static FP on this class.
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    p[0] = 'a';
    int mode = input_byte(0L);
    if (mode > 0) {
        free(p);
    } else {
        free(p);
    }
    printf("done %%d\n", mode & 0);
    return 0;
}`, p.size)
		},
		input: func(p *params) []byte { return []byte{1} },
	}
	helper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
void release(char* p) {
    free(p);
}
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    p[0] = 'a';
    release(p);
    release(p);
    printf("done\n");
    return 0;
}`, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
void release(char* p) {
    free(p);
}
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    p[0] = 'a';
    release(p);
    printf("done\n");
    return 0;
}`, p.size)
		},
	}
	aliased := tcase{
		tag: "alias",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    char* q = p;
    p[0] = 'a';
    free(p);
    free(q);
    printf("done\n");
    return 0;
}`, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d);
    if (p == 0) { return 1; }
    char* q = p;
    p[0] = 'a';
    free(q);
    printf("done\n");
    return 0;
}`, p.size)
		},
	}
	return emit(cwe, n, []weighted{
		{direct, 4}, {conditional, 6}, {helper, 6}, {aliased, 4},
	})
}

// --------------------------------------------------------------- CWE-416

func genUseAfterFree(cwe string, n int) []Case {
	readAfter := tcase{
		tag: "read",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    free(p);
    int* q = (int*)malloc(16L);
    if (q == 0) { return 1; }
    q[0] = %d;
    printf("%%d %%d\n", p[0], q[0]);
    free(q);
    return 0;
}`, p.val, p.val*3)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    int kept = p[0];
    free(p);
    int* q = (int*)malloc(16L);
    if (q == 0) { return 1; }
    q[0] = %d;
    printf("%%d %%d\n", kept, q[0]);
    free(q);
    return 0;
}`, p.val, p.val*3)
		},
	}
	helperUse := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int load(int* p) {
    return p[0];
}
void drop(int* p) {
    free(p);
}
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    drop(p);
    int* q = (int*)malloc(16L);
    if (q == 0) { return 1; }
    q[0] = %d;
    printf("%%d\n", load(p));
    free(q);
    return 0;
}`, p.val, p.val+7)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int load(int* p) {
    return p[0];
}
void drop(int* p) {
    free(p);
}
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    int v = load(p);
    drop(p);
    printf("%%d\n", v);
    return 0;
}`, p.val)
		},
	}
	writeAfter := tcase{
		tag: "write",
		bad: func(p *params) string {
			// The write lands in the reused chunk under eager-reuse
			// allocators and in dead memory otherwise.
			return fmt.Sprintf(`
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    free(p);
    int* q = (int*)malloc(16L);
    if (q == 0) { return 1; }
    q[0] = %d;
    p[0] = %d;
    printf("%%d\n", q[0]);
    free(q);
    return 0;
}`, p.val, p.val+50)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    free(p);
    int* q = (int*)malloc(16L);
    if (q == 0) { return 1; }
    q[0] = %d;
    printf("%%d\n", q[0]);
    free(q);
    return 0;
}`, p.val+50, p.val)
		},
	}
	silent := tcase{
		tag: "silent",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int load(int* p) {
    return p[0];
}
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    free(p);
    int v = load(p);
    printf("done %%d\n", v & 0);
    return 0;
}`, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int load(int* p) {
    return p[0];
}
int main() {
    int* p = (int*)malloc(16L);
    if (p == 0) { return 1; }
    p[0] = %d;
    int v = load(p);
    free(p);
    printf("done %%d\n", v & 0);
    return 0;
}`, p.val)
		},
	}
	return emit(cwe, n, []weighted{
		{readAfter, 6}, {helperUse, 5}, {writeAfter, 5}, {silent, 4},
	})
}

// --------------------------------------------------------------- CWE-590

func genBadFree(cwe string, n int) []Case {
	freeArray := tcase{
		tag: "array",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char data[%d];
    for (int i = 0; i < %d; i++) { data[i] = (char)i; }
    free(data);
    printf("done %%d\n", data[0] & 0);
    return 0;
}`, p.size, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* data = (char*)malloc(%d);
    if (data == 0) { return 1; }
    for (int i = 0; i < %d; i++) { data[i] = (char)i; }
    free(data);
    printf("done 0\n");
    return 0;
}`, p.size, p.size)
		},
	}
	freeAddr := tcase{
		tag: "addr",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    long value_%d = %dL;
    free((char*)&value_%d);
    printf("done %%ld\n", value_%d & 0L);
    return 0;
}`, p.seq, p.val, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    long value_%d = %dL;
    printf("done %%ld\n", value_%d & 0L);
    return 0;
}`, p.seq, p.val, p.seq)
		},
	}
	freeInterior := tcase{
		tag: "interior",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(32L);
    if (p == 0) { return 1; }
    p[0] = 'x';
    p = p + %d;
    free(p);
    printf("done\n");
    return 0;
}`, 4+p.seq%8)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(32L);
    if (p == 0) { return 1; }
    p[0] = 'x';
    char* mid = p + %d;
    mid[0] = 'y';
    free(p);
    printf("done\n");
    return 0;
}`, 4+p.seq%8)
		},
	}
	freeGlobalHelper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
char pool_%d[%d];
void cleanup(char* p) {
    free(p);
}
int main() {
    pool_%d[0] = 'a';
    cleanup(pool_%d);
    printf("done\n");
    return 0;
}`, p.seq, p.size, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
char pool_%d[%d];
void cleanup(char* p) {
    free(p);
}
int main() {
    pool_%d[0] = 'a';
    char* heap = (char*)malloc(%d);
    if (heap == 0) { return 1; }
    cleanup(heap);
    printf("done\n");
    return 0;
}`, p.seq, p.size, p.seq, p.size)
		},
	}
	return emit(cwe, n, []weighted{
		{freeArray, 6}, {freeAddr, 4}, {freeInterior, 5}, {freeGlobalHelper, 5},
	})
}
