package juliet

import "fmt"

// CWE-457 (use of uninitialized variable) and CWE-665 (improper
// initialization). The structural facts: MSan only reports uses that
// decide a branch (7% of Juliet's tests do); CompDiff sees almost
// everything because uninitialized stack bytes hold each
// implementation's own fill pattern in its own frame layout.

func genUninitVar(cwe string, n int) []Case {
	printDirect := tcase{
		tag: "print",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int value_%d;
    int other = %d;
    printf("%%d %%d\n", value_%d, other);
    return 0;
}`, p.seq, p.val, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int value_%d = %d;
    int other = %d;
    printf("%%d %%d\n", value_%d, other);
    return 0;
}`, p.seq, p.val*2, p.val, p.seq)
		},
	}
	helperNoWrite := tcase{
		tag: "helper",
		bad: func(p *params) string {
			// Listing 4's shape: the helper is *supposed* to set the
			// value but doesn't on the empty-input path. &x makes
			// every static tier assume initialization.
			return fmt.Sprintf(`
void parse_value(int* out, long have) {
    if (have > 0L) { *out = %d; }
}
int main() {
    int l;
    parse_value(&l, input_size());
    printf("%%d\n", (l & 65535) >> %d);
    return 0;
}`, p.val, p.seq%4)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
void parse_value(int* out, long have) {
    if (have > 0L) { *out = %d; }
}
int main() {
    int l = 0;
    parse_value(&l, input_size());
    printf("%%d\n", (l & 65535) >> %d);
    return 0;
}`, p.val, p.seq%4)
		},
	}
	branchUse := tcase{
		tag: "branch",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int flag_%d;
    if (flag_%d > %d) {
        printf("high\n");
    } else {
        printf("low\n");
    }
    return 0;
}`, p.seq, p.seq, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int flag_%d = input_byte(0L);
    if (flag_%d > %d) {
        printf("high\n");
    } else {
        printf("low\n");
    }
    return 0;
}`, p.seq, p.seq, p.val)
		},
	}
	partialInit := tcase{
		tag: "partial",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int result_%d;
    int mode = input_byte(0L);
    if (mode > %d) {
        result_%d = mode * 2;
    }
    printf("%%d\n", result_%d);
    return 0;
}`, p.seq, p.val%64+64, p.seq, p.seq)
		},
		good: func(p *params) string {
			// Both branches assign — correct, yet flagged by the
			// branch-insensitive union heuristic (the FP source).
			return fmt.Sprintf(`
int main() {
    int result_%d;
    int mode = input_byte(0L);
    if (mode > %d) {
        result_%d = mode * 2;
    } else {
        result_%d = 7;
    }
    printf("%%d\n", result_%d);
    return 0;
}`, p.seq, p.val%64+64, p.seq, p.seq, p.seq)
		},
		input: func(p *params) []byte { return []byte{1} },
	}
	heapUninit := tcase{
		tag: "heap",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* vals = (int*)malloc(%d);
    if (vals == 0) { return 1; }
    vals[0] = %d;
    printf("%%d %%d\n", vals[0], vals[2]);
    free(vals);
    return 0;
}`, 16+(p.seq%2)*16, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* vals = (int*)malloc(%d);
    if (vals == 0) { return 1; }
    memset((char*)vals, 0, %d);
    vals[0] = %d;
    printf("%%d %%d\n", vals[0], vals[2]);
    free(vals);
    return 0;
}`, 16+(p.seq%2)*16, 16+(p.seq%2)*16, p.val)
		},
	}
	silentUninit := tcase{
		tag: "silent",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int noise_%d;
    int masked = noise_%d & 0;
    printf("done %%d\n", masked);
    return 0;
}`, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int noise_%d = %d;
    int masked = noise_%d & 0;
    printf("done %%d\n", masked);
    return 0;
}`, p.seq, p.val, p.seq)
		},
	}
	return emit(cwe, n, []weighted{
		{printDirect, 3}, {helperNoWrite, 9}, {branchUse, 2},
		{partialInit, 4}, {heapUninit, 1}, {silentUninit, 1},
	})
}

// --------------------------------------------------------------- CWE-665

func genImproperInit(cwe string, n int) []Case {
	partialStruct := tcase{
		tag: "struct",
		bad: func(p *params) string {
			return fmt.Sprintf(`
struct Conf%d {
    int mode;
    int limit;
};
void setup(struct Conf%d* c) {
    c->mode = %d;
}
int main() {
    struct Conf%d c;
    setup(&c);
    printf("%%d %%d\n", c.mode, c.limit);
    return 0;
}`, p.seq, p.seq, p.val, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
struct Conf%d {
    int mode;
    int limit;
};
void setup(struct Conf%d* c) {
    c->mode = %d;
    c->limit = %d;
}
int main() {
    struct Conf%d c;
    setup(&c);
    printf("%%d %%d\n", c.mode, c.limit);
    return 0;
}`, p.seq, p.seq, p.val, p.val*4, p.seq)
		},
	}
	truncatedCopy := tcase{
		tag: "strncpy",
		bad: func(p *params) string {
			// strncpy leaves the copy unterminated: strlen keeps going
			// through the *uninitialized in-slot tail* of the buffer —
			// inside the object (no redzone), but layout-dependent.
			return fmt.Sprintf(`
int main() {
    char name[24];
    name[23] = '\0';
    strncpy(name, "abcdefghijklmnop", %d);
    printf("%%ld\n", strlen(name));
    return 0;
}`, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char name[24];
    name[23] = '\0';
    strncpy(name, "abcdefghijklmnop", %d);
    name[%d] = '\0';
    printf("%%ld\n", strlen(name));
    return 0;
}`, p.size, p.size)
		},
	}
	return emit(cwe, n, []weighted{{partialStruct, 1}, {truncatedCopy, 1}})
}
