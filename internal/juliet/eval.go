package juliet

import (
	"compdiff/internal/analyzer"
)

// allStaticTools returns the static baselines (indirection point for
// tests and the bench harness).
func allStaticTools() []analyzer.Tool { return analyzer.AllTools() }
