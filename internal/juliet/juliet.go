// Package juliet generates the benchmark suite used to evaluate
// CompDiff against sanitizers and static analyzers (paper §4.1, Tables
// 2 and 3, Figure 1). It mirrors the structure of the NIST Juliet
// C/C++ suite: a set of CWE categories, each with many small test
// programs in *bad* (one planted flaw) and *good* (flaw fixed)
// variants, built from Juliet-style flow/data variants — direct flaws,
// helper-function indirection, conditional flows, stack/heap/global
// data, input-derived and constant values.
//
// The suite is generated at 1:10 of the paper's 18,142 tests (small
// CWEs keep their full size). The variant *mix* within each CWE is
// what decides which tools can see which share of the bugs: syntactic
// patterns for the static tier, redzone-visible accesses for ASan,
// branch-decided uses for MSan, output-propagating corruption for
// CompDiff — reproducing the detection-rate structure of Table 3
// mechanically rather than by fiat.
package juliet

import (
	"fmt"

	"compdiff/internal/analyzer"
)

// Case is one Juliet-style test: a bad variant with exactly one
// planted flaw, a good variant with the flaw repaired, and the input
// that drives execution to the flaw site.
type Case struct {
	CWE   string
	Name  string
	Group analyzer.Category
	Bad   string
	Good  string
	Input []byte

	// Stealth marks flaws that are *defined-behaviour logic errors*
	// (unsigned wraparound misuse): real CWE weaknesses that no tool
	// in the evaluation can see — the reason no Table 3 row reaches
	// 100% on the integer classes.
	Stealth bool
}

// Suite is a generated collection of cases.
type Suite struct {
	Cases []Case
}

// CWEInfo describes one CWE category (Table 2 rows).
type CWEInfo struct {
	ID          string
	Description string
	Group       analyzer.Category
	PaperCount  int // tests in the paper's extraction of Juliet
	Count       int // tests generated here
}

// Catalog lists the 20 CWEs of Table 2 with this repo's scaled counts.
var Catalog = []CWEInfo{
	{"CWE-121", "Stack Based Buffer Overflow", analyzer.MemoryError, 2951, 295},
	{"CWE-122", "Heap Based Buffer Overflow", analyzer.MemoryError, 3575, 357},
	{"CWE-124", "Buffer Underwrite", analyzer.MemoryError, 1024, 102},
	{"CWE-126", "Buffer Overread", analyzer.MemoryError, 721, 72},
	{"CWE-127", "Buffer Underread", analyzer.MemoryError, 1022, 102},
	{"CWE-415", "Double Free", analyzer.MemoryError, 820, 82},
	{"CWE-416", "Use After Free", analyzer.MemoryError, 394, 40},
	{"CWE-475", "Undefined Behavior for Input to API", analyzer.APIMisuse, 18, 18},
	{"CWE-588", "Access Child of Non Struct. Pointer", analyzer.BadStructPtr, 80, 80},
	{"CWE-590", "Free Memory Not on Heap", analyzer.MemoryError, 2280, 228},
	{"CWE-685", "Function Call With Incorrect #Args.", analyzer.BadCall, 18, 18},
	{"CWE-758", "Undefined Behavior", analyzer.GeneralUB, 523, 52},
	{"CWE-190", "Integer Overflow", analyzer.IntegerError, 1564, 156},
	{"CWE-191", "Integer Underflow", analyzer.IntegerError, 1169, 117},
	{"CWE-369", "Divide by Zero", analyzer.DivByZero, 437, 44},
	{"CWE-476", "NULL Pointer Dereference", analyzer.NullDeref, 306, 31},
	{"CWE-680", "Integer Overflow to Buffer Overflow", analyzer.IntegerError, 196, 20},
	{"CWE-457", "Use of Uninitialized Variable", analyzer.UninitMemory, 928, 93},
	{"CWE-665", "Improper Initialization", analyzer.UninitMemory, 98, 10},
	{"CWE-469", "Use of Pointer Sub. to Determine Size", analyzer.PtrSubtraction, 18, 18},
}

// generator builds all cases for one CWE.
type generator func(cwe string, n int) []Case

var generators = map[string]generator{
	"CWE-121": genStackOverflow,
	"CWE-122": genHeapOverflow,
	"CWE-124": genUnderwrite,
	"CWE-126": genOverread,
	"CWE-127": genUnderread,
	"CWE-415": genDoubleFree,
	"CWE-416": genUseAfterFree,
	"CWE-475": genAPIMisuse,
	"CWE-588": genBadStructPtr,
	"CWE-590": genBadFree,
	"CWE-685": genBadCall,
	"CWE-758": genGeneralUB,
	"CWE-190": genIntOverflow,
	"CWE-191": genIntUnderflow,
	"CWE-369": genDivZero,
	"CWE-476": genNullDeref,
	"CWE-680": genOverflowToBufOverflow,
	"CWE-457": genUninitVar,
	"CWE-665": genImproperInit,
	"CWE-469": genPtrSubtraction,
}

// Generate builds the full suite at the default scale.
func Generate() *Suite {
	return GenerateScaled(1)
}

// GenerateScaled divides every category count by scale (minimum one
// case per template family); scale=1 is the default suite, larger
// scales are for quick tests.
func GenerateScaled(scale int) *Suite {
	if scale < 1 {
		scale = 1
	}
	s := &Suite{}
	for _, info := range Catalog {
		gen := generators[info.ID]
		n := info.Count / scale
		if n < 6 {
			n = 6
		}
		cases := gen(info.ID, n)
		for i := range cases {
			cases[i].CWE = info.ID
			cases[i].Group = info.Group
			if cases[i].Name == "" {
				cases[i].Name = fmt.Sprintf("%s_%04d", info.ID, i)
			}
		}
		s.Cases = append(s.Cases, cases...)
	}
	return s
}

// ByCWE groups the cases by CWE id.
func (s *Suite) ByCWE() map[string][]Case {
	out := map[string][]Case{}
	for _, c := range s.Cases {
		out[c.CWE] = append(out[c.CWE], c)
	}
	return out
}

// ---------------------------------------------------------------------------
// Template machinery

// tcase is a parameterized template: bad and good sources plus input.
type tcase struct {
	tag     string
	bad     func(p *params) string
	good    func(p *params) string
	input   func(p *params) []byte
	stealth bool
}

// params varies per generated case so no two programs are identical.
type params struct {
	seq  int
	size int // buffer size, 4..12
	off  int // overflow distance, 1..4
	val  int // payload value
}

func newParams(seq int) *params {
	return &params{
		seq:  seq,
		size: 4 + (seq*3)%9,
		off:  1 + seq%4,
		val:  10 + (seq*7)%80,
	}
}

// emit round-robins the weighted templates to produce n cases. The
// expansion interleaves templates so that even small generated counts
// sample every template family in proportion.
func emit(cwe string, n int, templates []weighted) []Case {
	remaining := make([]int, len(templates))
	total := 0
	for i, w := range templates {
		remaining[i] = w.weight
		total += w.weight
	}
	var expanded []tcase
	for len(expanded) < total {
		for i := range templates {
			if remaining[i] > 0 {
				remaining[i]--
				expanded = append(expanded, templates[i].t)
			}
		}
	}
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		t := expanded[i%len(expanded)]
		p := newParams(i)
		c := Case{
			Name:    fmt.Sprintf("%s_%s_%04d", cwe, t.tag, i),
			Bad:     t.bad(p),
			Good:    t.good(p),
			Stealth: t.stealth,
		}
		if t.input != nil {
			c.Input = t.input(p)
		}
		out = append(out, c)
	}
	return out
}

type weighted struct {
	t      tcase
	weight int
}
