package juliet

import "fmt"

// CWE-476 NULL pointer dereference. The structural facts: optimizing
// implementations *delete* dead dereferences and fold checked-after-
// deref branches, so the -O0 binaries crash where the -O2 binaries
// sail through — which is how an output-only oracle reaches 93% here.

func genNullDeref(cwe string, n int) []Case {
	deadDerefLiteral := tcase{
		tag: "deadlit",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* p = 0;
    int probe_%d = %d;
    *p;
    printf("alive %%d\n", probe_%d);
    return 0;
}`, p.seq, p.val, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int keep_%d = %d;
    int* p = &keep_%d;
    int probe_%d = %d;
    *p;
    printf("alive %%d\n", probe_%d);
    return 0;
}`, p.seq, p.val, p.seq, p.seq, p.val, p.seq)
		},
	}
	deadDerefHelper := tcase{
		tag: "deadhelper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int* locate(int which) {
    static int slot;
    if (which > %d) { return &slot; }
    return 0;
}
int main() {
    int* p = locate(input_byte(0L));
    *p;
    printf("alive\n");
    return 0;
}`, p.val%64+64)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int* locate(int which) {
    static int slot;
    if (which > %d) { return &slot; }
    return 0;
}
int main() {
    int* p = locate(input_byte(0L));
    if (p != 0) { *p; }
    printf("alive\n");
    return 0;
}`, p.val%64+64)
		},
		input: func(p *params) []byte { return []byte{0} },
	}
	uncheckedAlloc := tcase{
		tag: "alloc",
		bad: func(p *params) string {
			// The oversized allocation fails; the dead probe read of
			// the null result crashes only the unoptimizing binaries.
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d000000L);
    *p;
    printf("provisioned\n");
    free(p);
    return 0;
}`, 2+p.seq%6)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* p = (char*)malloc(%d000000L);
    if (p == 0) { printf("oom\n"); return 1; }
    *p;
    printf("provisioned\n");
    free(p);
    return 0;
}`, 2+p.seq%6)
		},
	}
	checkAfterDeref := tcase{
		tag: "checkafter",
		bad: func(p *params) string {
			// Both the deref and the late check execute: every binary
			// crashes identically — the share CompDiff misses.
			return fmt.Sprintf(`
int fetch(int* p) {
    int v = *p;
    if (p == 0) { return -1; }
    return v;
}
int main() {
    int* p = 0;
    printf("%%d\n", fetch(p));
    return 0;
}`)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int fetch(int* p) {
    if (p == 0) { return -1; }
    return *p;
}
int main() {
    int x = %d;
    printf("%%d\n", fetch(&x));
    return 0;
}`, p.val)
		},
	}
	liveNullUse := tcase{
		tag: "live",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* p = 0;
    int mode = input_byte(0L);
    if (mode > %d) {
        static int cell;
        p = &cell;
    }
    printf("%%d\n", *p);
    return 0;
}`, p.val%64+64)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int* p = 0;
    int mode = input_byte(0L);
    if (mode > %d) {
        static int cell;
        p = &cell;
    }
    if (p == 0) { printf("absent\n"); return 0; }
    printf("%%d\n", *p);
    return 0;
}`, p.val%64+64)
		},
		input: func(p *params) []byte { return []byte{0} },
	}
	return emit(cwe, n, []weighted{
		{deadDerefLiteral, 4}, {deadDerefHelper, 6}, {uncheckedAlloc, 7},
		{checkAfterDeref, 1}, {liveNullUse, 2},
	})
}
