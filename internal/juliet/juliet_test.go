package juliet

import (
	"fmt"
	"testing"

	"compdiff/internal/compiler"
	"compdiff/internal/core"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/sanitizer"
)

func TestCatalogMatchesPaperTable2(t *testing.T) {
	if len(Catalog) != 20 {
		t.Fatalf("CWEs = %d, want 20", len(Catalog))
	}
	paperTotal := 0
	for _, info := range Catalog {
		paperTotal += info.PaperCount
	}
	if paperTotal != 18142 {
		t.Fatalf("paper total = %d, want 18142", paperTotal)
	}
}

func TestGenerateCounts(t *testing.T) {
	s := Generate()
	byCWE := s.ByCWE()
	for _, info := range Catalog {
		if got := len(byCWE[info.ID]); got != info.Count {
			t.Errorf("%s: generated %d, want %d", info.ID, got, info.Count)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateScaled(10)
	b := GenerateScaled(10)
	if len(a.Cases) != len(b.Cases) {
		t.Fatal("case counts differ")
	}
	for i := range a.Cases {
		if a.Cases[i].Bad != b.Cases[i].Bad || a.Cases[i].Good != b.Cases[i].Good {
			t.Fatalf("case %d differs between generations", i)
		}
	}
}

func TestCaseNamesUnique(t *testing.T) {
	s := GenerateScaled(4)
	seen := map[string]bool{}
	for _, c := range s.Cases {
		if seen[c.Name] {
			t.Fatalf("duplicate name %s", c.Name)
		}
		seen[c.Name] = true
	}
}

// Every generated program — bad and good — must parse and type-check.
func TestAllCasesCompile(t *testing.T) {
	s := Generate()
	for _, c := range s.Cases {
		for _, variant := range []struct {
			kind string
			src  string
		}{{"bad", c.Bad}, {"good", c.Good}} {
			prog, err := parser.Parse(variant.src)
			if err != nil {
				t.Fatalf("%s/%s parse: %v\n%s", c.Name, variant.kind, err, variant.src)
			}
			if _, err := sema.Check(prog); err != nil {
				t.Fatalf("%s/%s check: %v\n%s", c.Name, variant.kind, err, variant.src)
			}
		}
	}
}

// Soundness of the whole evaluation: good variants are UB-free, so
// they must behave identically under every compiler implementation
// (zero false positives for CompDiff, Finding 5) and raise no
// sanitizer report.
func TestGoodVariantsAreStable(t *testing.T) {
	scale := 10
	if testing.Short() {
		scale = 40
	}
	s := GenerateScaled(scale)
	cfgs := compiler.DefaultSet()
	for _, c := range s.Cases {
		suite, err := core.BuildSource(c.Good, cfgs, core.Options{})
		if err != nil {
			t.Fatalf("%s/good build: %v", c.Name, err)
		}
		o := suite.Run(c.Input)
		if o.Diverged {
			groups := map[uint64][]string{}
			for i, h := range o.Hashes {
				groups[h] = append(groups[h], suite.Names()[i])
			}
			detail := ""
			for h, names := range groups {
				detail += fmt.Sprintf("  %v:\n%s\n", names, o.Results[idxOfHash(o.Hashes, h)].Encode())
			}
			t.Fatalf("%s: good variant diverged (CompDiff false positive)\n%s\nsource:\n%s",
				c.Name, detail, c.Good)
		}
	}
}

func idxOfHash(hashes []uint64, h uint64) int {
	for i, x := range hashes {
		if x == h {
			return i
		}
	}
	return 0
}

func TestGoodVariantsSanitizerClean(t *testing.T) {
	scale := 10
	if testing.Short() {
		scale = 40
	}
	s := GenerateScaled(scale)
	for _, c := range s.Cases {
		info := sema.MustCheck(parser.MustParse(c.Good))
		for _, tool := range sanitizer.AllTools() {
			r, err := sanitizer.NewRunner(info, tool)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			res, rep := r.Run(c.Input)
			if rep != nil {
				t.Fatalf("%s/good: %s false positive: %s\nsource:\n%s", c.Name, tool, rep, c.Good)
			}
			if res.Crashed() {
				t.Fatalf("%s/good crashed under %s: %s\nsource:\n%s", c.Name, tool, res.Exit, c.Good)
			}
		}
	}
}

// Bad variants must be *reachable* flaws: each one, on its input, is
// detected by at least one tool in the evaluation (CompDiff, a
// sanitizer, or a crash) — otherwise it would be dead weight that no
// row of Table 3 could ever count.
func TestBadVariantsDetectableBySomeone(t *testing.T) {
	scale := 10
	if testing.Short() {
		scale = 40
	}
	s := GenerateScaled(scale)
	cfgs := compiler.DefaultSet()
	for _, c := range s.Cases {
		if c.Stealth {
			continue // defined-behaviour logic flaws: invisible by design
		}
		suite, err := core.BuildSource(c.Bad, cfgs, core.Options{})
		if err != nil {
			t.Fatalf("%s/bad build: %v", c.Name, err)
		}
		o := suite.Run(c.Input)
		detected := o.Diverged
		if !detected {
			info := sema.MustCheck(parser.MustParse(c.Bad))
			sanRes, err := sanitizer.CheckAll(info, c.Input)
			if err != nil {
				t.Fatal(err)
			}
			for _, hit := range sanRes {
				if hit {
					detected = true
				}
			}
		}
		if !detected {
			// Static-only categories (e.g. unused missing-return) are
			// permitted: a static tool must see them instead.
			staticSeen := staticDetects(t, c)
			if !staticSeen {
				t.Errorf("%s: bad variant invisible to every tool\n%s", c.Name, c.Bad)
			}
		}
	}
}

func staticDetects(t *testing.T, c Case) bool {
	t.Helper()
	info := sema.MustCheck(parser.MustParse(c.Bad))
	for _, tool := range allStaticTools() {
		for _, f := range tool.Analyze(info) {
			if f.Category == c.Group {
				return true
			}
		}
	}
	return false
}
