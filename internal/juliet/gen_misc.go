package juliet

import "fmt"

// CWE-475 (API misuse), CWE-588 (bad struct pointer), CWE-685 (bad
// call arity), CWE-758 (general UB), CWE-469 (pointer subtraction).

// --------------------------------------------------------------- CWE-475

func genAPIMisuse(cwe string, n int) []Case {
	overlapFwd := tcase{
		tag: "overlap",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char buf[32];
    for (int i = 0; i < 32; i++) { buf[i] = (char)(65 + i %% 26); }
    memcpy(buf + %d, buf, %d);
    for (int i = 0; i < 24; i++) { printf("%%c", buf[i]); }
    printf("\n");
    return 0;
}`, 2+p.seq%3, 8+p.seq%8)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char buf[32];
    char tmp[32];
    for (int i = 0; i < 32; i++) { buf[i] = (char)(65 + i %% 26); }
    memcpy(tmp, buf, %d);
    memcpy(buf + %d, tmp, %d);
    for (int i = 0; i < 24; i++) { printf("%%c", buf[i]); }
    printf("\n");
    return 0;
}`, 8+p.seq%8, 2+p.seq%3, 8+p.seq%8)
		},
	}
	overlapBack := tcase{
		tag: "overlapback",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char buf[24];
    for (int i = 0; i < 24; i++) { buf[i] = (char)(97 + i %% 26); }
    memcpy(buf, buf + %d, %d);
    for (int i = 0; i < 20; i++) { printf("%%c", buf[i]); }
    printf("\n");
    return 0;
}`, 3+p.seq%2, 10+p.seq%6)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char buf[24];
    char tmp[24];
    for (int i = 0; i < 24; i++) { buf[i] = (char)(97 + i %% 26); }
    memcpy(tmp, buf + %d, %d);
    memcpy(buf, tmp, %d);
    for (int i = 0; i < 20; i++) { printf("%%c", buf[i]); }
    printf("\n");
    return 0;
}`, 3+p.seq%2, 10+p.seq%6, 10+p.seq%6)
		},
	}
	return emit(cwe, n, []weighted{{overlapFwd, 1}, {overlapBack, 1}})
}

// --------------------------------------------------------------- CWE-588

func genBadStructPtr(cwe string, n int) []Case {
	fromScalar := tcase{
		tag: "scalar",
		bad: func(p *params) string {
			// The struct extends past the single int: the far field
			// reads neighboring stack bytes, which depend on the frame
			// layout. ASan's slot redzones see the overrun.
			return fmt.Sprintf(`
struct Wide%d {
    int head;
    int mid;
    int far;
};
int main() {
    int lone_%d = %d;
    int other = %d;
    int* p = &lone_%d;
    struct Wide%d* w = (struct Wide%d*)p;
    printf("%%d %%d %%d\n", w->head, w->far, other);
    return 0;
}`, p.seq, p.seq, p.val, p.val+9, p.seq, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
struct Wide%d {
    int head;
    int mid;
    int far;
};
int main() {
    struct Wide%d real;
    real.head = %d;
    real.mid = 0;
    real.far = %d;
    int other = %d;
    struct Wide%d* w = &real;
    printf("%%d %%d %%d\n", w->head, w->far, other);
    return 0;
}`, p.seq, p.seq, p.val, p.val+1, p.val+9, p.seq)
		},
	}
	fromScalarHelper := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
struct Wide%d {
    int head;
    int mid;
    long far;
};
long read_far(struct Wide%d* w) {
    return w->far;
}
int main() {
    int lone_%d = %d;
    printf("%%ld\n", read_far((struct Wide%d*)(void*)&lone_%d));
    return 0;
}`, p.seq, p.seq, p.seq, p.val, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
struct Wide%d {
    int head;
    int mid;
    long far;
};
long read_far(struct Wide%d* w) {
    return w->far;
}
int main() {
    struct Wide%d real;
    real.head = %d;
    real.mid = 1;
    real.far = %dL;
    printf("%%ld\n", read_far(&real));
    return 0;
}`, p.seq, p.seq, p.seq, p.val, p.val)
		},
	}
	fromBigBuffer := tcase{
		tag: "buffer",
		bad: func(p *params) string {
			// The buffer is big enough — the flaw is type confusion:
			// the fields read *uninitialized* buffer bytes, which hold
			// each implementation's fill pattern. In-bounds, so ASan
			// stays silent; only the output discrepancy gives it away.
			return fmt.Sprintf(`
struct Rec%d {
    int kind;
    int count;
    int extra;
};
int main() {
    char raw[64];
    raw[0] = (char)%d;
    struct Rec%d* r = (struct Rec%d*)(void*)raw;
    printf("%%d %%d\n", r->count, r->extra);
    return 0;
}`, p.seq, p.val, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
struct Rec%d {
    int kind;
    int count;
    int extra;
};
int main() {
    char raw[64];
    memset(raw, 0, 64L);
    raw[0] = (char)%d;
    struct Rec%d* r = (struct Rec%d*)(void*)raw;
    printf("%%d %%d\n", r->count, r->extra);
    return 0;
}`, p.seq, p.val, p.seq, p.seq)
		},
	}
	return emit(cwe, n, []weighted{
		{fromScalar, 6}, {fromScalarHelper, 4}, {fromBigBuffer, 10},
	})
}

// --------------------------------------------------------------- CWE-685

func genBadCall(cwe string, n int) []Case {
	missingValue := tcase{
		tag: "missingint",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int combine(int a, int b) {
    return a * 1000 + b %% 1000;
}
int main() {
    printf("%%d\n", combine(%d));
    return 0;
}`, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int combine(int a, int b) {
    return a * 1000 + b %% 1000;
}
int main() {
    printf("%%d\n", combine(%d, %d));
    return 0;
}`, p.val, p.val+1)
		},
	}
	missingSize := tcase{
		tag: "missingsize",
		bad: func(p *params) string {
			// The missing length parameter reads frame garbage; masked
			// into a small range it decides how far the fill loop runs,
			// sometimes past the buffer (ASan sees that overrun).
			return fmt.Sprintf(`
void fill(char* dst, int len) {
    for (int i = 0; i < (len & 31); i++) { dst[i] = 'A'; }
}
int main() {
    char buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = 'z'; }
    fill(buf);
    printf("%%c%%c\n", buf[0], buf[7]);
    return 0;
}`)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
void fill(char* dst, int len) {
    for (int i = 0; i < (len & 31); i++) { dst[i] = 'A'; }
}
int main() {
    char buf[8];
    for (int i = 0; i < 8; i++) { buf[i] = 'z'; }
    fill(buf, %d);
    printf("%%c%%c\n", buf[0], buf[7]);
    return 0;
}`, p.size%8)
		},
	}
	return emit(cwe, n, []weighted{{missingValue, 1}, {missingSize, 1}})
}

// --------------------------------------------------------------- CWE-758

func genGeneralUB(cwe string, n int) []Case {
	missingReturn := tcase{
		tag: "noreturn",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int classify(int v) {
    if (v > %d) { return 1; }
    if (v > 0) { return 0; }
}
int main() {
    printf("%%d\n", classify(0 - %d));
    return 0;
}`, p.val, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int classify(int v) {
    if (v > %d) { return 1; }
    if (v > 0) { return 0; }
    return -1;
}
int main() {
    printf("%%d\n", classify(0 - %d));
    return 0;
}`, p.val, p.val)
		},
	}
	constShift := tcase{
		tag: "shift",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int bits = %d;
    int v = %d << 35;
    printf("%%d %%d\n", v, bits);
    return 0;
}`, p.seq, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int bits = %d;
    int v = %d << 5;
    printf("%%d %%d\n", v, bits);
    return 0;
}`, p.seq, p.val)
		},
	}
	unusedReturn := tcase{
		tag: "noretunused",
		bad: func(p *params) string {
			// The garbage return value is never consumed: stable output
			// everywhere, visible only to the static tier.
			return fmt.Sprintf(`
int step(int v) {
    if (v > 0) { return v - 1; }
}
int main() {
    step(0 - %d);
    printf("done\n");
    return 0;
}`, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int step(int v) {
    if (v > 0) { return v - 1; }
    return 0;
}
int main() {
    step(0 - %d);
    printf("done\n");
    return 0;
}`, p.val)
		},
	}
	loopReturnBait := tcase{
		tag: "loopret",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int pick(int v) {
    if (v > 0) { return v; }
}
int main() {
    printf("%%d\n", pick(0 - %d));
    return 0;
}`, p.seq%9+1)
		},
		good: func(p *params) string {
			// Correct (the for(;;) always returns), but the
			// fall-off-the-end heuristic cannot prove it: static FP.
			return fmt.Sprintf(`
int pick(int v) {
    for (;;) {
        if (v > 0) { return v; }
        v = v + %d;
    }
}
int main() {
    printf("%%d\n", pick(0 - %d));
    return 0;
}`, p.seq%9+1, p.seq%9+1)
		},
	}
	return emit(cwe, n, []weighted{
		{missingReturn, 9}, {constShift, 5}, {unusedReturn, 1}, {loopReturnBait, 1},
	})
}

// --------------------------------------------------------------- CWE-469

func genPtrSubtraction(cwe string, n int) []Case {
	stackPair := tcase{
		tag: "stack",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char first[%d];
    char second[%d];
    first[0] = 'a';
    second[0] = 'b';
    long span = second - first;
    printf("%%ld\n", span);
    return 0;
}`, p.size, p.size+4)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char block[%d];
    block[0] = 'a';
    block[%d] = 'b';
    char* first = block;
    char* second = block + %d;
    long span = second - first;
    printf("%%ld\n", span);
    return 0;
}`, p.size+8, p.size, p.size)
		},
	}
	heapPair := tcase{
		tag: "heap",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* a = (char*)malloc(%d);
    char* b = (char*)malloc(%d);
    if (a == 0 || b == 0) { return 1; }
    a[0] = 'a';
    b[0] = 'b';
    long gap = b - a;
    printf("%%ld\n", gap);
    free(a);
    free(b);
    return 0;
}`, p.size, p.size)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char* a = (char*)malloc(%d);
    if (a == 0) { return 1; }
    a[0] = 'a';
    char* b = a + %d;
    long gap = b - a;
    printf("%%ld\n", gap);
    free(a);
    return 0;
}`, p.size+16, p.size)
		},
	}
	sizeFromSub := tcase{
		tag: "size",
		bad: func(p *params) string {
			// The "size" computed from unrelated pointers decides how
			// much to copy — bounded only by a sanity clamp.
			return fmt.Sprintf(`
int main() {
    char src[32];
    char dst[32];
    char probe_%d;
    probe_%d = 'p';
    for (int i = 0; i < 32; i++) { src[i] = (char)(65 + i %% 26); dst[i] = '.'; }
    long want = (&probe_%d - src) & 15L;
    memcpy(dst, src, want);
    for (int i = 0; i < 16; i++) { printf("%%c", dst[i]); }
    printf(" %%c\n", probe_%d);
    return 0;
}`, p.seq, p.seq, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    char src[32];
    char dst[32];
    for (int i = 0; i < 32; i++) { src[i] = (char)(65 + i %% 26); dst[i] = '.'; }
    long want = (src + %d) - src;
    memcpy(dst, src, want);
    for (int i = 0; i < 16; i++) { printf("%%c", dst[i]); }
    printf("\n");
    return 0;
}`, p.size)
		},
	}
	return emit(cwe, n, []weighted{{stackPair, 2}, {heapPair, 2}, {sizeFromSub, 2}})
}
