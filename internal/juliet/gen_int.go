package juliet

import "fmt"

// Integer-error CWEs (190, 191, 680) and divide-by-zero (369).
//
// The decisive structural facts, mirroring the paper:
//   - executed signed overflow *wraps identically everywhere* — it
//     diverges only when an implementation changes the evaluation
//     width (the widening pass) — hence CompDiff's low 11% here;
//   - a large share of Juliet's "integer overflow" tests use unsigned
//     arithmetic, which is defined and invisible to UBSan too — hence
//     UBSan's 33% rather than ~100%;
//   - quotient division by zero diverges (trap vs. folded poison) but
//     remainder traps uniformly — giving UBSan its edge on CWE-369.

// --------------------------------------------------------------- CWE-190

func genIntOverflow(cwe string, n int) []Case {
	signedPrint := tcase{
		tag: "smul",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int a = input_byte(0L) * %d + 2000000;
    int b = input_byte(1L) * %d + 2000000;
    int r = a * b;
    printf("%%d\n", r);
    return 0;
}`, p.val*100, p.val*50)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int a = input_byte(0L) %% 100;
    if (a < 0) { a = 0; }
    int b = input_byte(1L) %% 100;
    if (b < 0) { b = 0; }
    int r = a * b;
    printf("%%d\n", r);
    return 0;
}`)
		},
		input: func(p *params) []byte { return []byte{9, 9} },
	}
	widen := tcase{
		tag: "widen",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int a = input_byte(0L) + %d;
    int b = input_byte(1L) + %d;
    long x = a * b;
    printf("%%ld\n", x);
    return 0;
}`, p.val*3000, p.val*2000)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int a = input_byte(0L) + %d;
    int b = input_byte(1L) + %d;
    long x = (long)a * (long)b;
    printf("%%ld\n", x);
    return 0;
}`, p.val*3000, p.val*2000)
		},
		input: func(p *params) []byte { return []byte{200, 200} },
	}
	branchOnly := tcase{
		tag: "branch",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int big = 2147483647 - %d;
    int t = big + input_byte(0L);
    if (t == 0) { printf("zero\n"); } else { printf("steady\n"); }
    return 0;
}`, p.seq%4)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    long big = 2147483647L - %dL;
    long t = big + input_byte(0L);
    if (t == 0L) { printf("zero\n"); } else { printf("steady\n"); }
    return 0;
}`, p.seq%4)
		},
		input: func(p *params) []byte { return []byte{200} },
	}
	helperSigned := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int scaled(int v, int k) {
    return v * k;
}
int main() {
    int v = input_byte(0L) + 2100000;
    int r = scaled(v, %d);
    printf("%%d\n", r);
    return 0;
}`, p.val*40)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int scaled(int v, int k) {
    return v * k;
}
int main() {
    int v = input_byte(0L) %% 1000;
    int r = scaled(v, %d);
    printf("%%d\n", r);
    return 0;
}`, p.val%50+2)
		},
		input: func(p *params) []byte { return []byte{100} },
	}
	unsignedAlloc := tcase{
		tag: "ualloc",
		bad: func(p *params) string {
			// Unsigned wrap shrinks the allocation request: a logic
			// bug, defined behaviour, invisible to every dynamic tool
			// here (the program guards the resulting size).
			return fmt.Sprintf(`
int main() {
    unsigned int count = (unsigned int)input_byte(0L) * 715827883U;
    unsigned int bytes = count * 6U;
    if (bytes > 1024U) { printf("too big\n"); return 0; }
    char* p = (char*)malloc((long)bytes + 1);
    if (p == 0) { return 1; }
    p[0] = 'x';
    printf("alloc %%c\n", p[0]);
    free(p);
    return 0;
}`)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    unsigned int count = (unsigned int)input_byte(0L);
    if (count > 170U) { printf("too big\n"); return 0; }
    unsigned int bytes = count * 6U;
    char* p = (char*)malloc((long)bytes + 1);
    if (p == 0) { return 1; }
    p[0] = 'x';
    printf("alloc %%c\n", p[0]);
    free(p);
    return 0;
}`)
		},
		input: func(p *params) []byte { return []byte{3} },
	}
	unsignedPrint := tcase{
		tag:     "uprint",
		stealth: true,
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    unsigned int total = 4294967295U - %dU;
    unsigned int add = (unsigned int)input_byte(0L);
    total = total + add;
    printf("%%u\n", total);
    return 0;
}`, p.seq%16)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    unsigned long total = 4294967295UL - %dUL;
    unsigned long add = (unsigned long)input_byte(0L);
    total = total + add;
    printf("%%lu\n", total);
    return 0;
}`, p.seq%16)
		},
		input: func(p *params) []byte { return []byte{99} },
	}
	return emit(cwe, n, []weighted{
		{signedPrint, 3}, {widen, 2}, {branchOnly, 1}, {helperSigned, 1},
		{unsignedAlloc, 5}, {unsignedPrint, 8},
	})
}

// --------------------------------------------------------------- CWE-191

func genIntUnderflow(cwe string, n int) []Case {
	signedSub := tcase{
		tag: "ssub",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int low = (0 - 2147483647) - 1 + %d;
    int d = input_byte(0L);
    int r = low - d;
    printf("%%d\n", r);
    return 0;
}`, p.seq%4)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    long low = (0L - 2147483647L) - 1L + %dL;
    long d = input_byte(0L);
    long r = low - d;
    printf("%%ld\n", r);
    return 0;
}`, p.seq%4)
		},
		input: func(p *params) []byte { return []byte{50} },
	}
	widenSub := tcase{
		tag: "widen",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int a = 0 - (input_byte(0L) + %d);
    int b = input_byte(1L) + %d;
    long x = a * b - b;
    printf("%%ld\n", x);
    return 0;
}`, p.val*2500, p.val*1500)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    long a = 0L - (input_byte(0L) + %dL);
    long b = input_byte(1L) + %dL;
    long x = a * b - b;
    printf("%%ld\n", x);
    return 0;
}`, p.val*2500, p.val*1500)
		},
		input: func(p *params) []byte { return []byte{250, 250} },
	}
	unsignedBorrow := tcase{
		tag:     "uborrow",
		stealth: true,
		bad: func(p *params) string {
			// Classic size_t-style underflow: len - consumed wraps to a
			// huge value; the guard keeps it defined but wrong.
			return fmt.Sprintf(`
int main() {
    unsigned int have = (unsigned int)input_byte(0L);
    unsigned int want = %dU;
    unsigned int remaining = have - want;
    if (remaining > 4000000000U) { printf("lots left\n"); } else { printf("rem %%u\n", remaining); }
    return 0;
}`, p.val%40+10)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    unsigned int have = (unsigned int)input_byte(0L);
    unsigned int want = %dU;
    if (have < want) { printf("short\n"); return 0; }
    unsigned int remaining = have - want;
    printf("rem %%u\n", remaining);
    return 0;
}`, p.val%40+10)
		},
		input: func(p *params) []byte { return []byte{1} },
	}
	unsignedLoop := tcase{
		tag:     "uloop",
		stealth: true,
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    unsigned int i = (unsigned int)input_byte(0L);
    unsigned int steps = 0U;
    while (i != 0U && steps < 40U) {
        i = i - 3U;
        steps = steps + 1U;
    }
    printf("%%u %%u\n", i, steps);
    return 0;
}`)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    unsigned int i = (unsigned int)input_byte(0L);
    unsigned int steps = 0U;
    while (i >= 3U && steps < 40U) {
        i = i - 3U;
        steps = steps + 1U;
    }
    printf("%%u %%u\n", i, steps);
    return 0;
}`)
		},
		input: func(p *params) []byte { return []byte{7} },
	}
	return emit(cwe, n, []weighted{
		{signedSub, 4}, {widenSub, 2}, {unsignedBorrow, 8}, {unsignedLoop, 6},
	})
}

// --------------------------------------------------------------- CWE-680

func genOverflowToBufOverflow(cwe string, n int) []Case {
	mulAlloc := tcase{
		tag: "mulalloc",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int count = input_byte(0L) * 16777216 + 2;
    int total = count * 4;
    if (total < 64) {
        int* p = (int*)malloc((long)total);
        if (p == 0) { return 1; }
        for (int i = 0; i < count && i < 4; i++) { p[i] = i; }
        p[count %% 1024] = %d;
        printf("%%d\n", p[0]);
        free(p);
        return 0;
    }
    printf("big\n");
    return 0;
}`, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int count = input_byte(0L) %% 8 + 2;
    int total = count * 4;
    int* p = (int*)malloc((long)total);
    if (p == 0) { return 1; }
    for (int i = 0; i < count; i++) { p[i] = i; }
    printf("%%d\n", p[0]);
    free(p);
    return 0;
}`)
		},
		input: func(p *params) []byte { return []byte{128} },
	}
	addAlloc := tcase{
		tag: "addalloc",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int len = input_byte(0L) * 13421772 + %d;
    int need = len + len;
    if (need > 0 && need < 32) {
        char* p = (char*)malloc((long)need);
        if (p == 0) { return 1; }
        p[24] = 'x';
        printf("w %%c\n", p[24]);
        free(p);
        return 0;
    }
    printf("skip\n");
    return 0;
}`, p.seq%8)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int len = input_byte(0L) %% 8 + %d;
    int need = len + len;
    char* p = (char*)malloc((long)need);
    if (p == 0) { return 1; }
    p[need - 1] = 'x';
    printf("w %%c\n", p[need - 1]);
    free(p);
    return 0;
}`, p.seq%8+1)
		},
		input: func(p *params) []byte { return []byte{160} },
	}
	return emit(cwe, n, []weighted{{mulAlloc, 1}, {addAlloc, 1}})
}

// --------------------------------------------------------------- CWE-369

func genDivZero(cwe string, n int) []Case {
	literal := tcase{
		tag: "literal",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int x = %d;
    int r = x / 0;
    printf("%%d\n", r);
    return 0;
}`, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int x = %d;
    int r = x / 2;
    printf("%%d\n", r);
    return 0;
}`, p.val)
		},
	}
	inputDiv := tcase{
		tag: "input",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int d = input_byte(0L);
    int r = %d / d;
    printf("%%d\n", r);
    return 0;
}`, p.val*100)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int d = input_byte(0L);
    if (d == 0) { printf("guard\n"); return 0; }
    int r = %d / d;
    printf("%%d\n", r);
    return 0;
}`, p.val*100)
		},
		input: func(p *params) []byte { return []byte{0} },
	}
	helperDiv := tcase{
		tag: "helper",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int ratio(int a, int b) {
    return a / b;
}
int main() {
    int d = input_byte(0L) - %d;
    printf("%%d\n", ratio(%d, d));
    return 0;
}`, p.val%50+5, p.val*10)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int ratio(int a, int b) {
    if (b == 0) { return 0; }
    return a / b;
}
int main() {
    int d = input_byte(0L) - %d;
    printf("%%d\n", ratio(%d, d));
    return 0;
}`, p.val%50+5, p.val*10)
		},
		input: func(p *params) []byte { return []byte{byte(p.val%50 + 5)} },
	}
	modZero := tcase{
		tag: "mod",
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int d = input_byte(0L);
    int r = %d %% d;
    printf("%%d\n", r);
    return 0;
}`, p.val*9)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    int d = input_byte(0L);
    if (d == 0) { d = 1; }
    int r = %d %% d;
    printf("%%d\n", r);
    return 0;
}`, p.val*9)
		},
		input: func(p *params) []byte { return []byte{0} },
	}
	floatLit := tcase{
		tag: "flit",
		bad: func(p *params) string {
			// IEEE division by zero: defined (infinity) and identical
			// everywhere — no dynamic tool reports; the weakness is
			// still real (CWE-369 covers it).
			return fmt.Sprintf(`
int main() {
    double x = %d.5;
    double zero_%d = 0.0;
    double r = x / zero_%d;
    if (r > 1000000.0) { printf("inf-like\n"); } else { printf("%%f\n", r); }
    return 0;
}`, p.val, p.seq, p.seq)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    double x = %d.5;
    double d = 2.0;
    double r = x / d;
    printf("%%f\n", r);
    return 0;
}`, p.val)
		},
	}
	floatInput := tcase{
		tag: "finput",
		// IEEE division by zero yields infinity everywhere: defined,
		// identical, and guarded only by a float compare no checker
		// trusts — invisible to the whole toolbox by design.
		stealth: true,
		bad: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    double d = (double)input_byte(0L);
    double r = %d.25 / d;
    if (r > 100000.0) { printf("huge\n"); } else { printf("%%f\n", r); }
    return 0;
}`, p.val)
		},
		good: func(p *params) string {
			return fmt.Sprintf(`
int main() {
    double d = (double)input_byte(0L);
    if (d == 0.0) { printf("guard\n"); return 0; }
    printf("%%f\n", %d.25 / d);
    return 0;
}`, p.val)
		},
		input: func(p *params) []byte { return []byte{0} },
	}
	return emit(cwe, n, []weighted{
		{literal, 1}, {inputDiv, 3}, {helperDiv, 2}, {modZero, 5},
		{floatLit, 2}, {floatInput, 7},
	})
}
