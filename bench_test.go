package compdiff_test

// One benchmark per table and figure of the paper's evaluation (§4),
// plus micro-benchmarks of the machinery. Each benchmark regenerates
// its artifact; `go run ./cmd/report -all` prints the same rows.
// Custom metrics surface the headline numbers (detection counts,
// unique bugs, overhead factors) next to the timings.

import (
	"context"
	"testing"

	"compdiff"
	"compdiff/internal/bench"
	"compdiff/internal/compiler"
	"compdiff/internal/juliet"
	"compdiff/internal/minic/parser"
	"compdiff/internal/minic/sema"
	"compdiff/internal/progcache"
	"compdiff/internal/targets"
	"compdiff/internal/telemetry"
	"compdiff/internal/vm"
)

// ---------------------------------------------------------------------------
// Table 2: suite generation

func BenchmarkTable2SuiteGeneration(b *testing.B) {
	var cases int
	for i := 0; i < b.N; i++ {
		s := juliet.Generate()
		cases = len(s.Cases)
	}
	b.ReportMetric(float64(cases), "cases")
}

// ---------------------------------------------------------------------------
// Table 3: full tool comparison on the Juliet suite (reduced scale per
// iteration; the full-scale run is cmd/report's job)

func BenchmarkTable3Detection(b *testing.B) {
	suite := juliet.GenerateScaled(8)
	b.ResetTimer()
	var unique int
	for i := 0; i < b.N; i++ {
		t3, err := bench.ComputeTable3(suite, nil)
		if err != nil {
			b.Fatal(err)
		}
		unique = t3.TotalUnique
	}
	b.ReportMetric(float64(len(suite.Cases)), "cases")
	b.ReportMetric(float64(unique), "unique-bugs")
}

// ---------------------------------------------------------------------------
// Figure 1: subset sweep over the Juliet bug matrix

func BenchmarkFigure1Subsets(b *testing.B) {
	suite := juliet.GenerateScaled(8)
	t3, err := bench.ComputeTable3(suite, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var best int
	for i := 0; i < b.N; i++ {
		fig := bench.ComputeFigure1(t3.Matrix)
		_, best = fig.BestPair()
	}
	b.ReportMetric(float64(len(t3.Matrix.Rows)), "bugs")
	b.ReportMetric(float64(best), "best-pair-detects")
}

// ---------------------------------------------------------------------------
// Table 4: target projects

func BenchmarkTable4Targets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(targets.All()); got != 23 {
			b.Fatalf("targets = %d", got)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 5: real-world bugs — CompDiff detection of all 78 planted bugs

func BenchmarkTable5RealWorld(b *testing.B) {
	var detected int
	for i := 0; i < b.N; i++ {
		rw, err := bench.ComputeRealWorld(nil)
		if err != nil {
			b.Fatal(err)
		}
		detected = len(rw.Matrix.Rows)
	}
	b.ReportMetric(float64(detected), "bugs-detected")
}

// ---------------------------------------------------------------------------
// Table 6: sanitizer overlap on the real-world bugs

func BenchmarkTable6Overlap(b *testing.B) {
	rw, err := bench.ComputeRealWorld(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var unique int
	for i := 0; i < b.N; i++ {
		t6 := bench.ComputeTable6(rw)
		unique = t6.AllTotal - t6.CaughtTotal
	}
	b.ReportMetric(float64(unique), "compdiff-only-bugs")
}

// ---------------------------------------------------------------------------
// Figure 2: subset sweep over the real-world bug matrix

func BenchmarkFigure2Subsets(b *testing.B) {
	rw, err := bench.ComputeRealWorld(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var pairBugs int
	for i := 0; i < b.N; i++ {
		fig := bench.ComputeFigure1(rw.Matrix)
		_, pairBugs = fig.BestPair()
	}
	b.ReportMetric(float64(pairBugs), "best-pair-detects")
}

// ---------------------------------------------------------------------------
// §5 overhead: per-input differential cost at 1, 2, and 10 binaries

func BenchmarkOverheadSingleBinary(b *testing.B)    { overheadBench(b, 1) }
func BenchmarkOverheadRecommendedPair(b *testing.B) { overheadBench(b, 2) }
func BenchmarkOverheadFullTen(b *testing.B)         { overheadBench(b, 10) }

func overheadBench(b *testing.B, k int) {
	tg := targets.ByName("readelf")
	input := tg.Seeds[0]

	if k == 1 {
		// A single binary, as in plain (non-differential) fuzzing.
		// Persistent-mode framing: the warm machine is reused and the
		// machine-owned result is consumed in place, exactly as the
		// campaign's batch executor drives it — Clone only happens on
		// the divergence path, never per exec.
		info := sema.MustCheck(parser.MustParse(tg.Src))
		bin := compiler.MustCompile(info, compiler.Config{Family: compiler.Clang, Opt: compiler.O2})
		m := vm.New(bin, vm.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunShared(input)
		}
		return
	}

	var impls []compdiff.Implementation
	if k == 2 {
		impls = compdiff.RecommendedPair()
	} else {
		impls = compdiff.DefaultImplementations()
	}
	suite, err := compdiff.New(tg.Src, impls, compdiff.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.Run(input)
	}
}

// ---------------------------------------------------------------------------
// Parallel execution layer: the same differential run fanned across a
// worker pool. On a multi-core runner BenchmarkSuiteRunParallel
// should beat BenchmarkSuiteRunSequential by ~min(Parallelism, k,
// cores); on one core the pair bounds the pool's overhead instead.

func BenchmarkSuiteRunSequential(b *testing.B) { suiteRunBench(b, 1, false) }
func BenchmarkSuiteRunParallel(b *testing.B)   { suiteRunBench(b, 4, false) }

// BenchmarkSuiteRunFast is the fuzzing fast path over the same ten
// binaries: outputs checksummed in machine-owned buffers, results
// materialized only on divergence. The gap to SuiteRunSequential is
// what the zero-copy protocol buys per differential execution.
func BenchmarkSuiteRunFast(b *testing.B) {
	tg := targets.ByName("readelf")
	input := tg.Seeds[0]
	suite, err := compdiff.New(tg.Src, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		b.Fatal(err)
	}
	suite.Warm(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.RunFast(input)
	}
}

// BenchmarkSuiteRunParallelTelemetry is BenchmarkSuiteRunParallel with
// the metrics sink attached — the pair bounds the telemetry overhead
// (two atomics and a histogram insert per VM run; budget: <= 5%).
func BenchmarkSuiteRunParallelTelemetry(b *testing.B) { suiteRunBench(b, 4, true) }

func suiteRunBench(b *testing.B, parallelism int, withMetrics bool) {
	tg := targets.ByName("readelf")
	input := tg.Seeds[0]
	impls := compdiff.DefaultImplementations()
	opts := compdiff.Options{Parallelism: parallelism}
	if withMetrics {
		names := make([]string, len(impls))
		for i, im := range impls {
			names[i] = im.Name()
		}
		opts.Metrics = telemetry.NewSuiteMetrics(names)
	}
	suite, err := compdiff.New(tg.Src, impls, opts)
	if err != nil {
		b.Fatal(err)
	}
	suite.Warm(parallelism)
	b.ReportMetric(float64(parallelism), "workers")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suite.Run(input)
	}
}

// BenchmarkSuiteRunBatch64 drives the persistent-mode batch executor
// the way the campaign's BatchSize option does: 64 inputs per warm
// machine-set borrow, outcomes recycled across flushes. ns/op is per
// input, directly comparable with BenchmarkSuiteRunFast — the gap is
// the per-exec scratch borrow/park the batch hoists.
func BenchmarkSuiteRunBatch64(b *testing.B) {
	tg := targets.ByName("readelf")
	suite, err := compdiff.New(tg.Src, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		b.Fatal(err)
	}
	suite.Warm(1)
	batch := make([][]byte, 0, 64)
	var outs []*compdiff.Outcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch = append(batch, tg.Seeds[0])
		if len(batch) == cap(batch) || i == b.N-1 {
			outs = suite.RunBatch(batch, outs[:0])
			batch = batch[:0]
		}
	}
	_ = outs
}

// BenchmarkProgCacheHit is the compiled-program cache's hit path: one
// murmur3-128 of the source plus a map probe and an LRU relink,
// versus the ten lowerings a miss costs (BenchmarkCompileTenImplementations).
func BenchmarkProgCacheHit(b *testing.B) {
	tg := targets.ByName("readelf")
	cache := progcache.New(0)
	cfgs := compiler.DefaultSet()
	if c := cache.Get(tg.Src, cfgs, 1); c.FrontendErr != nil {
		b.Fatal(c.FrontendErr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := cache.Get(tg.Src, cfgs, 1); c.FrontendErr != nil {
			b.Fatal(c.FrontendErr)
		}
	}
	st := cache.Stats()
	b.ReportMetric(float64(st.Misses), "misses")
}

// Sharded campaigns: one fuzzer instance vs. an AFL -M/-S-style pool
// of four at the same per-shard budget. Throughput (execs covered per
// wall-clock second) is the headline; unique diffs come along as a
// sanity metric.

func BenchmarkCampaignSingleShard(b *testing.B) { campaignShardBench(b, 1) }
func BenchmarkCampaignFourShards(b *testing.B)  { campaignShardBench(b, 4) }

func campaignShardBench(b *testing.B, shards int) {
	tg := targets.ByName("readelf")
	var execs int64
	var diffs int
	for i := 0; i < b.N; i++ {
		pool, err := compdiff.NewCampaignPool(tg.Src, tg.Seeds, compdiff.CampaignOptions{
			FuzzSeed: 7,
			Shards:   shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats := pool.Run(context.Background(), 2_000)
		execs = stats.Execs
		diffs = stats.UniqueDiffs
	}
	b.ReportMetric(float64(execs), "execs")
	b.ReportMetric(float64(diffs), "unique-diffs")
}

// ---------------------------------------------------------------------------
// Machinery micro-benchmarks

func BenchmarkDifferentialRunListing1(b *testing.B) {
	src := `
int dump_data(int offset, int len, int size) {
    if (offset + len > size || offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -1; }
    return offset + len;
}
int main() {
    char buf[8];
    long n = read_input(buf, 8L);
    if (n < 8) { return 0; }
    int offset = 0;
    int len = 0;
    memcpy((char*)&offset, buf, 4L);
    memcpy((char*)&len, buf + 4, 4L);
    printf("%d\n", dump_data(offset & 2147483647, len & 2147483647, 2147483647));
    return 0;
}
`
	suite, err := compdiff.New(src, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		b.Fatal(err)
	}
	input := []byte{0x9b, 0xff, 0xff, 0x7f, 0x65, 0, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o := suite.Run(input); !o.Diverged {
			b.Fatal("lost the divergence")
		}
	}
}

func BenchmarkCompileTenImplementations(b *testing.B) {
	tg := targets.ByName("wireshark")
	for i := 0; i < b.N; i++ {
		if _, err := compdiff.New(tg.Src, compdiff.DefaultImplementations(), compdiff.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuzzerCampaign(b *testing.B) {
	tg := targets.ByName("curl")
	for i := 0; i < b.N; i++ {
		c, err := compdiff.NewCampaign(tg.Src, tg.Seeds, compdiff.CampaignOptions{FuzzSeed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		c.Run(500)
	}
}

// ---------------------------------------------------------------------------
// Ablations for the design choices DESIGN.md calls out

// Divergence-guided feedback (the §5 NEZHA-style extension) vs. plain
// coverage guidance, at a fixed budget on a real target.
func BenchmarkAblationDivergenceFeedbackOn(b *testing.B)  { feedbackAblation(b, true) }
func BenchmarkAblationDivergenceFeedbackOff(b *testing.B) { feedbackAblation(b, false) }

func feedbackAblation(b *testing.B, on bool) {
	tg := targets.ByName("readelf")
	var found int
	for i := 0; i < b.N; i++ {
		c, err := compdiff.NewCampaign(tg.Src, tg.Seeds, compdiff.CampaignOptions{
			FuzzSeed:           77,
			DivergenceFeedback: on,
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Run(4_000)
		found = len(c.Diffs())
	}
	b.ReportMetric(float64(found), "unique-diffs")
}

// The AFL deterministic stage vs. havoc-only, on bug discovery.
func BenchmarkAblationDeterministicStageOn(b *testing.B)  { detStageAblation(b, false) }
func BenchmarkAblationDeterministicStageOff(b *testing.B) { detStageAblation(b, true) }

func detStageAblation(b *testing.B, skip bool) {
	tg := targets.ByName("exiv2")
	var found int
	for i := 0; i < b.N; i++ {
		c, err := compdiff.NewCampaign(tg.Src, tg.Seeds, compdiff.CampaignOptions{
			FuzzSeed:          31,
			SkipDeterministic: skip,
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Run(4_000)
		found = len(c.Diffs())
	}
	b.ReportMetric(float64(found), "unique-diffs")
}

// Trace-diff fault localization cost per discrepancy (§5 extension).
func BenchmarkFaultLocalization(b *testing.B) {
	suite, err := compdiff.New(`
int check(int offset, int len) {
    if (offset < 0 || len < 0) { return -1; }
    if (offset + len < offset) { return -2; }
    return offset + len;
}
int main() {
    printf("%d\n", check(2147483647 - 100, 101));
    return 0;
}`, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		b.Fatal(err)
	}
	o := suite.Run(nil)
	if !o.Diverged {
		b.Fatal("no divergence")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Localize(o); err != nil {
			b.Fatal(err)
		}
	}
}
