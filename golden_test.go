package compdiff_test

// The golden-corpus regression layer: a small corpus of MiniC
// programs under testdata/golden/, each with a pinned input and the
// expected per-implementation output checksums. Any compiler or VM
// change that silently shifts execution semantics — a different fill
// pattern, a reordered optimization, a changed personality — fails
// these tests loudly instead of quietly altering the paper's
// reproduction numbers. Refresh intentionally changed expectations
// with:
//
//	go test -run TestGoldenCorpus -update .

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"compdiff"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/*.golden expectation files")

// renderOutcome formats everything the golden files pin: the verdict,
// the triage signature, and each implementation's output checksum and
// exit status.
func renderOutcome(names []string, o *compdiff.Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "diverged %v\n", o.Diverged)
	fmt.Fprintf(&b, "timeout_suspect %v\n", o.TimeoutSuspect)
	if o.Diverged {
		fmt.Fprintf(&b, "signature %016x\n", o.Signature())
		fp := compdiff.FingerprintOf(o)
		fmt.Fprintf(&b, "fingerprint %016x %s\n", fp.Key(), fp)
	}
	for i, name := range names {
		r := o.Results[i]
		fmt.Fprintf(&b, "%-12s hash=%016x exit=%s code=%d\n", name, o.Hashes[i], r.Exit, r.Code)
	}
	return b.String()
}

func TestGoldenCorpus(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "golden", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) == 0 {
		t.Fatal("no golden corpus programs found under testdata/golden/")
	}
	for _, srcPath := range srcs {
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		if strings.HasPrefix(name, "compile_") {
			continue // compile-stage findings never build a suite; see golden_compile_test.go
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(srcPath)
			if err != nil {
				t.Fatal(err)
			}
			var input []byte
			if data, err := os.ReadFile(strings.TrimSuffix(srcPath, ".mc") + ".input"); err == nil {
				input = data
			}
			suite, err := compdiff.New(string(src), compdiff.DefaultImplementations(), compdiff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := renderOutcome(suite.Names(), suite.Run(input))

			// The corpus also guards reproducibility itself: a second
			// run on the same warm suite must render identically.
			if again := renderOutcome(suite.Names(), suite.Run(input)); again != got {
				t.Fatalf("non-deterministic outcome:\nfirst:\n%s\nsecond:\n%s", got, again)
			}

			goldenPath := strings.TrimSuffix(srcPath, ".mc") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\n--- want\n%s--- got\n%s", name, want, got)
			}
		})
	}
}

// goldenFingerprintKey extracts the pinned fingerprint key from one
// golden expectation file.
func goldenFingerprintKey(t *testing.T, path string) uint64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == "fingerprint" {
			key, err := strconv.ParseUint(fields[1], 16, 64)
			if err != nil {
				t.Fatalf("%s: bad fingerprint line %q: %v", path, line, err)
			}
			return key
		}
	}
	t.Fatalf("%s pins no fingerprint line", path)
	return 0
}

// TestGoldenTriageReduce replays the bloated triage_* corpus through
// the delta-debugging reducer: every reproducer must shed at least 60%
// of its source bytes while keeping exactly the fingerprint its golden
// file pins — in sequential and Parallelism=4 modes alike — and the
// original finding plus its reduction must land in a single triage
// bucket.
func TestGoldenTriageReduce(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "golden", "triage_*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) < 6 {
		t.Fatalf("want at least 6 triage golden programs, found %d", len(srcs))
	}
	for _, srcPath := range srcs {
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(srcPath)
			if err != nil {
				t.Fatal(err)
			}
			var input []byte
			if data, err := os.ReadFile(strings.TrimSuffix(srcPath, ".mc") + ".input"); err == nil {
				input = data
			}
			wantKey := goldenFingerprintKey(t, strings.TrimSuffix(srcPath, ".mc")+".golden")
			for _, jobs := range []int{1, 4} {
				t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
					red, err := compdiff.Reduce(string(src), input, compdiff.ReduceOptions{
						Suite: compdiff.Options{Parallelism: jobs},
					})
					if err != nil {
						t.Fatal(err)
					}
					if red.SourceShrink() < 0.60 {
						t.Errorf("shrink %.0f%% < 60%% (%d -> %d bytes)",
							red.SourceShrink()*100, red.OrigSourceBytes, len(red.Source))
					}
					if red.Fingerprint.Key() != wantKey {
						t.Errorf("reduced fingerprint %016x != pinned %016x (%s)",
							red.Fingerprint.Key(), wantKey, red.Fingerprint)
					}

					// Dedup replay: re-running the bloated original and
					// its reduction must fill exactly one bucket, keyed
					// by the pinned fingerprint.
					store := compdiff.NewBucketStore()
					for _, finding := range []struct {
						src string
						in  []byte
					}{{string(src), input}, {red.Source, red.Input}} {
						suite, err := compdiff.New(finding.src, compdiff.DefaultImplementations(), compdiff.Options{})
						if err != nil {
							t.Fatal(err)
						}
						o := suite.Run(finding.in)
						if !o.Diverged {
							t.Fatal("finding does not diverge on replay")
						}
						store.Add(o)
					}
					if store.Len() != 1 {
						t.Fatalf("original + reduced span %d buckets, want 1", store.Len())
					}
					if got := store.Keys(); len(got) != 1 || got[0] != wantKey {
						t.Errorf("bucket keys %x, want [%016x]", got, wantKey)
					}
				})
			}
		})
	}
}

// TestGoldenCorpusParallel replays the corpus through the parallel
// execution path: Parallelism must never change a golden outcome.
func TestGoldenCorpusParallel(t *testing.T) {
	srcs, err := filepath.Glob(filepath.Join("testdata", "golden", "*.mc"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("golden corpus unavailable: %v", err)
	}
	for _, srcPath := range srcs {
		name := strings.TrimSuffix(filepath.Base(srcPath), ".mc")
		if strings.HasPrefix(name, "compile_") {
			continue // compile-stage findings never build a suite; see golden_compile_test.go
		}
		goldenPath := strings.TrimSuffix(srcPath, ".mc") + ".golden"
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -update): %v", err)
		}
		src, err := os.ReadFile(srcPath)
		if err != nil {
			t.Fatal(err)
		}
		var input []byte
		if data, err := os.ReadFile(strings.TrimSuffix(srcPath, ".mc") + ".input"); err == nil {
			input = data
		}
		suite, err := compdiff.New(string(src), compdiff.DefaultImplementations(), compdiff.Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderOutcome(suite.Names(), suite.Run(input)); got != string(want) {
			t.Errorf("parallel golden mismatch for %s\n--- want\n%s--- got\n%s", name, want, got)
		}
	}
}
