package compdiff_test

// Native `go test -fuzz` target for the differential engine itself:
// arbitrary input bytes flow through Suite.Run on the paper's
// recommended two-binary configuration, and the invariants CompDiff's
// oracle rests on are asserted on every execution. Run as a smoke
// test via `make fuzz-smoke`, or at length with
// `go test -fuzz=FuzzSuiteRun .`.

import (
	"bytes"
	"testing"

	"compdiff"
)

// fuzzSrc reads up to 16 bytes and exercises several unstable
// constructs gated on input values, so the fuzzer can actually steer
// between defined and undefined executions.
const fuzzSrc = `
int check(int offset, int len) {
    if (offset + len < offset) { return -1; }
    return offset + len;
}
int main() {
    char buf[16];
    long n = read_input(buf, 16L);
    if (n < 1) { return 0; }
    if (buf[0] == 'u') {
        int x;
        if (n > 100) { x = 1; }
        printf("u %d\n", x);
        return 0;
    }
    if (buf[0] == 's' && n >= 2) {
        printf("s %d\n", 1 << buf[1]);
        return 0;
    }
    if (n >= 9) {
        int offset = 0;
        int len = 0;
        memcpy((char*)&offset, buf + 1, 4L);
        memcpy((char*)&len, buf + 5, 4L);
        printf("o %d\n", check(offset & 2147483647, len & 2147483647));
        return 0;
    }
    printf("plain %ld\n", n);
    return 0;
}
`

func FuzzSuiteRun(f *testing.F) {
	suiteA, err := compdiff.New(fuzzSrc, compdiff.RecommendedPair(), compdiff.Options{})
	if err != nil {
		f.Fatal(err)
	}
	// An independently built suite: same source, same configs. Any
	// input on which the two disagree exposes hidden state leaking
	// between runs or non-determinism in compile/execute.
	suiteB, err := compdiff.New(fuzzSrc, compdiff.RecommendedPair(), compdiff.Options{})
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte{})
	f.Add([]byte("u"))
	f.Add([]byte("s\x21"))
	f.Add([]byte{'o', 0x9b, 0xff, 0xff, 0x7f, 0x65, 0, 0, 0})
	f.Add([]byte("plain input"))
	f.Add(bytes.Repeat([]byte{0xff}, 16))

	f.Fuzz(func(t *testing.T, input []byte) {
		o := suiteA.Run(input)
		if got, want := len(o.Results), len(suiteA.Impls); got != want {
			t.Fatalf("%d results for %d implementations", got, want)
		}
		if len(o.Hashes) != len(o.Results) {
			t.Fatalf("%d hashes for %d results", len(o.Hashes), len(o.Results))
		}
		diverged := false
		for _, h := range o.Hashes[1:] {
			if h != o.Hashes[0] {
				diverged = true
			}
		}
		if diverged != o.Diverged {
			t.Fatalf("Diverged=%v contradicts hashes %x", o.Diverged, o.Hashes)
		}

		// Reproducibility: the same warm suite and a fresh suite must
		// both agree with the first run, hash for hash.
		for _, again := range []*compdiff.Outcome{suiteA.Run(input), suiteB.Run(input)} {
			for i := range o.Hashes {
				if o.Hashes[i] != again.Hashes[i] {
					t.Fatalf("hash[%d] changed across runs: %016x vs %016x", i, o.Hashes[i], again.Hashes[i])
				}
			}
		}
		if o.Diverged {
			if sig := o.Signature(); sig != o.Signature() {
				t.Fatal("signature not stable")
			}
		}
	})
}
