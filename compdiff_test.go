package compdiff_test

import (
	"strings"
	"testing"

	"compdiff"
)

// The public API's end-to-end contract, as a downstream user would
// exercise it.

const stableProg = `
int main() {
    char buf[16];
    long n = read_input(buf, 16L);
    int sum = 0;
    for (long i = 0; i < n; i++) { sum += buf[i] & 127; }
    printf("sum=%d\n", sum);
    return 0;
}
`

const unstableProg = `
int main() {
    int x;
    printf("%d\n", x);
    return 0;
}
`

func TestPublicAPIStable(t *testing.T) {
	suite, err := compdiff.New(stableProg, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Impls) != 10 {
		t.Fatalf("impls = %d", len(suite.Impls))
	}
	if o := suite.Run([]byte("hello")); o.Diverged {
		t.Fatal("stable program diverged")
	}
}

func TestPublicAPIUnstable(t *testing.T) {
	suite, err := compdiff.New(unstableProg, compdiff.DefaultImplementations(), compdiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := suite.Run(nil)
	if !o.Diverged {
		t.Fatal("uninitialized read did not diverge")
	}
	store := compdiff.NewDiffStore("")
	if fresh, _ := store.Add(o); !fresh {
		t.Fatal("store did not record the discrepancy")
	}
	rep := store.Unique()[0].Report(suite.Names())
	if !strings.Contains(rep, "reproducers:") {
		t.Fatalf("report malformed:\n%s", rep)
	}
}

func TestPublicAPIRecommendedPair(t *testing.T) {
	pair := compdiff.RecommendedPair()
	if len(pair) != 2 || pair[0].Family == pair[1].Family {
		t.Fatalf("recommended pair should cross families: %v", pair)
	}
	suite, err := compdiff.New(unstableProg, pair, compdiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o := suite.Run(nil); !o.Diverged {
		t.Fatal("pair missed the uninitialized read")
	}
}

func TestPublicAPICampaign(t *testing.T) {
	c, err := compdiff.NewCampaign(unstableProg, [][]byte{{0}}, compdiff.CampaignOptions{FuzzSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(200)
	if len(c.Diffs()) == 0 {
		t.Fatal("campaign found nothing on a trivially unstable program")
	}
}

func TestPublicAPINormalizer(t *testing.T) {
	n := compdiff.DefaultNormalizer()
	got := string(n.Apply([]byte("at 10:44:23.405830 ptr 0xdeadbeef")))
	if !strings.Contains(got, "<TIME>") || !strings.Contains(got, "<PTR>") {
		t.Fatalf("normalizer output %q", got)
	}
}

func TestPublicAPIBadSourceErrors(t *testing.T) {
	if _, err := compdiff.New("int main( {", compdiff.DefaultImplementations(), compdiff.Options{}); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := compdiff.New("int f() { return 0; }", compdiff.DefaultImplementations(), compdiff.Options{}); err == nil {
		t.Fatal("expected missing-main error")
	}
}
