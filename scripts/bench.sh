#!/bin/sh
# Benchmark-trajectory harness: run the tier-1 benchmark set with
# -benchmem and emit a BENCH_<date>.json record (name, ns/op, B/op,
# allocs/op, plus run metadata) in the repo root. The ROADMAP
# re-anchor reads these files to see whether the hot path is getting
# faster or quietly regressing.
#
# Usage: scripts/bench.sh [outfile] [bench-regex] [benchtime]
#   outfile      defaults to BENCH_<YYYY-MM-DD>.json
#   bench-regex  defaults to the perf-tracked set (differential
#                overhead + suite hot path)
#   benchtime    defaults to 1s
#
# Examples:
#   scripts/bench.sh                                # trajectory record
#   scripts/bench.sh BENCH_baseline.json            # named record
#   scripts/bench.sh /dev/stdout 'SuiteRun' 100x    # quick look
set -eu

cd "$(dirname "$0")/.."

OUT="${1:-BENCH_$(date +%Y-%m-%d).json}"
BENCH="${2:-OverheadSingleBinary|OverheadRecommendedPair|OverheadFullTen|SuiteRunSequential|SuiteRunFast|SuiteRunParallel\$|DifferentialRunListing1}"
BENCHTIME="${3:-1s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v date="$(date +%Y-%m-%d)" -v benchtime="$BENCHTIME" \
    -v gover="$(go env GOVERSION)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && /ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    row = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
    if (bop != "") row = row sprintf(", \"b_per_op\": %s", bop)
    if (aop != "") row = row sprintf(", \"allocs_per_op\": %s", aop)
    row = row "}"
    rows[nrows++] = row
}
END {
    if (nrows == 0) { print "bench.sh: no benchmark rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nrows; i++) printf "%s%s\n", rows[i], (i < nrows-1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

[ "$OUT" = /dev/stdout ] || echo "wrote $OUT" >&2
