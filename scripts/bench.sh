#!/bin/sh
# Benchmark-trajectory harness: run the tier-1 benchmark set with
# -benchmem and emit a BENCH_<date>.json record (name, ns/op, B/op,
# allocs/op, plus run metadata) in the repo root. The ROADMAP
# re-anchor reads these files to see whether the hot path is getting
# faster or quietly regressing.
#
# Usage: scripts/bench.sh [outfile] [bench-regex] [benchtime]
#   outfile      defaults to BENCH_<YYYY-MM-DD>.json
#   bench-regex  defaults to the perf-tracked set (differential
#                overhead + suite hot path + batch/cache/campaign)
#   benchtime    defaults to 1s
#
#        scripts/bench.sh -diff OLD.json NEW.json
#   compares two records benchmark-by-benchmark and prints the deltas
#   (negative = faster).
#
# Examples:
#   scripts/bench.sh                                # trajectory record
#   scripts/bench.sh BENCH_baseline.json            # named record
#   scripts/bench.sh /dev/stdout 'SuiteRun' 100x    # quick look
#   scripts/bench.sh -diff BENCH_2026-08-06.json BENCH_2026-08-08.json
set -eu

cd "$(dirname "$0")/.."

# extract_rows FILE: one "name ns_per_op" pair per line from a
# bench.sh JSON record (the records are line-structured by
# construction: one benchmark object per line).
extract_rows() {
    awk '
    /"name"/ {
        line = $0
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        if (name != "" && ns != "") print name, ns
    }' "$1"
}

if [ "${1:-}" = "-diff" ]; then
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh -diff OLD.json NEW.json" >&2; exit 2; }
    OLD="$2"; NEW="$3"
    [ -r "$OLD" ] || { echo "bench.sh: cannot read $OLD" >&2; exit 1; }
    [ -r "$NEW" ] || { echo "bench.sh: cannot read $NEW" >&2; exit 1; }
    { extract_rows "$OLD" | sed 's/^/old /'; extract_rows "$NEW" | sed 's/^/new /'; } | awk '
    $1 == "old" { old[$2] = $3; order[n++] = $2 }
    $1 == "new" { new[$2] = $3; if (!($2 in old)) order[n++] = $2 }
    END {
        printf "%-36s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        both = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (seen[name]++) continue
            if (name in old && name in new) {
                delta = (new[name] - old[name]) / old[name] * 100
                printf "%-36s %12.1f %12.1f %+8.1f%%\n", name, old[name], new[name], delta
                both++
            } else if (name in old) {
                printf "%-36s %12.1f %12s %9s\n", name, old[name], "-", "gone"
            } else {
                printf "%-36s %12s %12.1f %9s\n", name, "-", new[name], "new"
            }
        }
        if (both == 0) { print "bench.sh: no common benchmarks between the two records" > "/dev/stderr"; exit 1 }
    }'
    exit 0
fi

OUT="${1:-BENCH_$(date +%Y-%m-%d).json}"
BENCH="${2:-OverheadSingleBinary|OverheadRecommendedPair|OverheadFullTen|SuiteRunSequential|SuiteRunFast|SuiteRunParallel\$|SuiteRunBatch64|ProgCacheHit|CampaignFourShards|DifferentialRunListing1}"
BENCHTIME="${3:-1s}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

awk -v date="$(date +%Y-%m-%d)" -v benchtime="$BENCHTIME" \
    -v gover="$(go env GOVERSION)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ && /ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    row = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
    if (bop != "") row = row sprintf(", \"b_per_op\": %s", bop)
    if (aop != "") row = row sprintf(", \"allocs_per_op\": %s", aop)
    row = row "}"
    rows[nrows++] = row
}
END {
    if (nrows == 0) { print "bench.sh: no benchmark rows parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < nrows; i++) printf "%s%s\n", rows[i], (i < nrows-1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

[ "$OUT" = /dev/stdout ] || echo "wrote $OUT" >&2

# Corpus opcode-pair histogram: the evidence behind the compile-time
# peephole folds and the LdLoc/CmpImm/AluImm superinstruction set
# (internal/compiler/peep.go picks its patterns from these pairs).
echo >&2
echo "== corpus opcode-pair histogram (superinstruction selection) ==" >&2
go run ./cmd/report -opcode-pairs -opcode-pairs-top 12 >&2 || true
