#!/bin/sh
# Tier-1 gate, shell form of `make check`: vet, build, race-enabled
# tests, and a short native-fuzz smoke. Usage: scripts/check.sh
# [fuzztime], e.g. `scripts/check.sh 30s`.
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# The interpreter differential self-test must hold under the race
# detector: the fast loop and the reference loop share machine state,
# and this is the gate that keeps them observationally identical. The
# full ./... run above includes it; naming it here makes the guard
# explicit and fails fast if the test is ever renamed away.
echo "== vm differential self-test (-race)"
go test -race -run 'TestDifferentialSelfTest|TestRunSharedMatchesRun|TestStepLimitBatchAccounting' \
	-count=1 ./internal/vm

# The batch-executor self-test is the same guard one layer up:
# Suite.RunBatch must be byte-identical to per-input Run over the
# golden corpus and the generated sweep, sequentially and with the
# parallel cross-check, under the race detector.
echo "== core batch-executor self-test (-race)"
go test -race -run 'TestRunBatchMatchesRun|TestRunBatchMatchesRunParallel|TestRunBatchSingletonIsRunFast' \
	-count=1 ./internal/core

# Benchmark smoke: the headline hot-path benchmark must still run (10
# iterations — correctness of the harness, not a timing gate).
echo "== bench smoke (BenchmarkOverheadFullTen, 10x)"
go test -run='^$' -bench='^BenchmarkOverheadFullTen$' -benchtime=10x -benchmem .

# Batch/cache bench smoke: the persistent-mode batch executor and the
# compiled-program cache benchmarks must exist and produce rows
# bench.sh can parse into the trajectory record (guards both the
# benchmarks and the bench.sh JSON pipeline).
echo "== bench smoke (SuiteRunBatch64 + ProgCacheHit via bench.sh)"
BENCH_SMOKE_JSON="$(mktemp)"
scripts/bench.sh "$BENCH_SMOKE_JSON" 'SuiteRunBatch64|ProgCacheHit' 10x >/dev/null 2>&1
for b in BenchmarkSuiteRunBatch64 BenchmarkProgCacheHit; do
	grep -q "\"name\": \"$b\", \"ns_per_op\": [0-9]" "$BENCH_SMOKE_JSON" || {
		echo "bench smoke: $b missing from bench.sh output" >&2
		cat "$BENCH_SMOKE_JSON" >&2
		rm -f "$BENCH_SMOKE_JSON"
		exit 1
	}
done
rm -f "$BENCH_SMOKE_JSON"

echo "== fuzz smoke ($FUZZTIME each)"
go test -fuzz=FuzzParse -fuzztime="$FUZZTIME" -run='^$' ./internal/minic/parser
go test -fuzz=FuzzSuiteRun -fuzztime="$FUZZTIME" -run='^$' .
go test -fuzz=FuzzReduce -fuzztime="$FUZZTIME" -run='^$' ./internal/triage
go test -fuzz=FuzzCompileOracle -fuzztime="$FUZZTIME" -run='^$' .
go test -fuzz=FuzzProgCache -fuzztime="$FUZZTIME" -run='^$' ./internal/progcache
go test -fuzz=FuzzEvolveMutate -fuzztime="$FUZZTIME" -run='^$' ./internal/evolve

# Coverage gate: per-package table plus hard floors on the triage
# layer, whose whole contract lives in its tests.
echo "== coverage gate"
scripts/cover.sh

# Telemetry smoke: a short sharded campaign with -stats must produce a
# plot.jsonl whose lines carry a nonzero execs/sec. The telemetry unit
# and determinism tests already ran under -race above; this checks the
# CLI-to-plot-file path end to end.
echo "== telemetry smoke (4 shards, 2000 execs)"
STATS_DIR="$(mktemp -d)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$STATS_DIR" "$SMOKE_DIR"' EXIT
go run ./cmd/compdiff-fuzz -target tcpdump -execs 2000 -shards 4 -sync 500 \
	-stats "$STATS_DIR" >/dev/null
grep -q '"execs_per_sec":[0-9]*[1-9]' "$STATS_DIR/plot.jsonl" || {
	echo "telemetry smoke: no nonzero execs_per_sec in plot.jsonl" >&2
	cat "$STATS_DIR/plot.jsonl" >&2
	exit 1
}

# Resume smoke: start a checkpointed campaign, SIGKILL it mid-run the
# moment a checkpoint is durable, and resume. The resumed summary must
# show the budget continuing past the resumed run's own -execs, and a
# clean persistence record. Built (not `go run`) so the kill reaches
# the fuzzer itself, not a parent go process.
echo "== resume smoke (kill -9 mid-campaign, -resume)"
go build -o "$SMOKE_DIR/compdiff-fuzz" ./cmd/compdiff-fuzz
CKPT_DIR="$SMOKE_DIR/ckpt"
"$SMOKE_DIR/compdiff-fuzz" -target tcpdump -execs 50000000 -shards 2 -sync 500 \
	-checkpoint "$CKPT_DIR" >"$SMOKE_DIR/first.log" 2>&1 &
SMOKE_PID=$!
i=0
while [ ! -f "$CKPT_DIR/MANIFEST.json" ]; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		echo "resume smoke: no checkpoint after 60s" >&2
		kill -9 "$SMOKE_PID" 2>/dev/null || true
		cat "$SMOKE_DIR/first.log" >&2
		exit 1
	fi
	sleep 0.2
done
kill -9 "$SMOKE_PID" 2>/dev/null || true
wait "$SMOKE_PID" 2>/dev/null || true
"$SMOKE_DIR/compdiff-fuzz" -target tcpdump -execs 2000 -shards 2 -sync 500 \
	-checkpoint "$CKPT_DIR" -resume >"$SMOKE_DIR/resume.log" 2>&1
grep -q 'resumed from checkpoint' "$SMOKE_DIR/resume.log" || {
	echo "resume smoke: resume fell back to a fresh start" >&2
	cat "$SMOKE_DIR/resume.log" >&2
	exit 1
}
SPENT="$(awk -F'[: ]+' '/^spent budget/ { print $3 }' "$SMOKE_DIR/resume.log")"
if [ -z "$SPENT" ] || [ "$SPENT" -le 2000 ]; then
	echo "resume smoke: spent budget '$SPENT' does not continue past the resumed -execs 2000" >&2
	cat "$SMOKE_DIR/resume.log" >&2
	exit 1
fi
grep -q '^persist errors : 0' "$SMOKE_DIR/resume.log" || {
	echo "resume smoke: nonzero (or missing) persist-error count" >&2
	cat "$SMOKE_DIR/resume.log" >&2
	exit 1
}

# Compile-oracle smoke: a -programs campaign over the three compile
# goldens must bucket exactly one finding per compile-stage class, and
# resuming the finished campaign from its checkpoint must reconstruct
# the same buckets instead of starting over.
echo "== compile-oracle smoke (-programs over testdata/golden/compile_*)"
PROG_DIR="$SMOKE_DIR/programs"
mkdir -p "$PROG_DIR"
cp testdata/golden/compile_*.mc "$PROG_DIR/"
CCKPT_DIR="$SMOKE_DIR/compile-ckpt"
"$SMOKE_DIR/compdiff-fuzz" -programs "$PROG_DIR" -shards 1 \
	-checkpoint "$CCKPT_DIR" >"$SMOKE_DIR/compile.log" 2>&1
grep -q '^compile classes: 1 accept/reject divergences, 1 ICEs, 1 diagnostic mismatches, 0 runtime' \
	"$SMOKE_DIR/compile.log" || {
	echo "compile-oracle smoke: campaign did not report one finding per compile class" >&2
	cat "$SMOKE_DIR/compile.log" >&2
	exit 1
}
"$SMOKE_DIR/compdiff-fuzz" -programs "$PROG_DIR" -shards 1 \
	-checkpoint "$CCKPT_DIR" -resume >"$SMOKE_DIR/compile-resume.log" 2>&1
grep -q 'resumed from checkpoint' "$SMOKE_DIR/compile-resume.log" || {
	echo "compile-oracle smoke: resume fell back to a fresh start" >&2
	cat "$SMOKE_DIR/compile-resume.log" >&2
	exit 1
}
grep -q '^findings       : 3 (3 triage buckets)' "$SMOKE_DIR/compile-resume.log" || {
	echo "compile-oracle smoke: resumed campaign lost buckets" >&2
	cat "$SMOKE_DIR/compile-resume.log" >&2
	exit 1
}

# Serve smoke: a two-worker farm must come up, answer the control
# plane, survive kill -9 of a worker (restart event + stats that keep
# the killed worker's progress), and drain cleanly on SIGTERM.
echo "== serve smoke (2 workers, kill -9 one, SIGTERM drain)"
FARM_DIR="$SMOKE_DIR/farm"
SERVE_ADDR="127.0.0.1:18479"
"$SMOKE_DIR/compdiff-fuzz" -serve "$SERVE_ADDR" -farm "$FARM_DIR" -workers 2 \
	-target tcpdump -execs-total 50000000 -sync 500 >"$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
i=0
until curl -sf "http://$SERVE_ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 150 ] || ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve smoke: control plane never came up" >&2
		kill -9 "$SERVE_PID" 2>/dev/null || true
		cat "$SMOKE_DIR/serve.log" >&2
		exit 1
	fi
	sleep 0.2
done
# Wait for both workers to report durable progress, then kill one.
i=0
until [ -f "$FARM_DIR/workers/worker-000/checkpoint/MANIFEST.json" ] &&
	[ -f "$FARM_DIR/workers/worker-001/checkpoint/MANIFEST.json" ]; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		echo "serve smoke: workers made no durable progress after 60s" >&2
		kill -9 "$SERVE_PID" 2>/dev/null || true
		cat "$SMOKE_DIR/serve.log" >&2
		exit 1
	fi
	sleep 0.2
done
WORKER_PID="$(curl -s "http://$SERVE_ADDR/stats" |
	sed -n 's/.*"pid": \([0-9][0-9]*\).*/\1/p' | head -1)"
if [ -z "$WORKER_PID" ]; then
	echo "serve smoke: /stats reported no worker pid" >&2
	kill -9 "$SERVE_PID" 2>/dev/null || true
	exit 1
fi
kill -9 "$WORKER_PID"
i=0
until curl -s "http://$SERVE_ADDR/events" | grep -q '"kind": "restart"'; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "serve smoke: no restart event after killing worker $WORKER_PID" >&2
		curl -s "http://$SERVE_ADDR/events" >&2 || true
		kill -9 "$SERVE_PID" 2>/dev/null || true
		exit 1
	fi
	sleep 0.2
done
curl -s "http://$SERVE_ADDR/stats" | grep -q '"spent_execs": [1-9]' || {
	echo "serve smoke: merged stats show no spent execs" >&2
	kill -9 "$SERVE_PID" 2>/dev/null || true
	exit 1
}
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
	i=$((i + 1))
	if [ "$i" -gt 150 ]; then
		echo "serve smoke: supervisor did not drain within 30s of SIGTERM" >&2
		kill -9 "$SERVE_PID" 2>/dev/null || true
		cat "$SMOKE_DIR/serve.log" >&2
		exit 1
	fi
	sleep 0.2
done
grep -q '^farm spent' "$SMOKE_DIR/serve.log" || {
	echo "serve smoke: no farm summary after drain" >&2
	cat "$SMOKE_DIR/serve.log" >&2
	exit 1
}

# Evolve smoke: a micro evolutionary campaign must fire optimizer
# passes and stream per-generation fitness telemetry into plot.jsonl.
# The fitness and pass_coverage fields are omitempty, so their mere
# presence in a plot line proves they were nonzero.
echo "== evolve smoke (-evolve, pop 6, 3 generations)"
EVOLVE_STATS="$SMOKE_DIR/evolve-stats"
"$SMOKE_DIR/compdiff-fuzz" -evolve -pop 6 -generations 3 -seed 7 \
	-stats "$EVOLVE_STATS" >"$SMOKE_DIR/evolve.log" 2>&1
grep -q '^pass coverage  : [1-9]' "$SMOKE_DIR/evolve.log" || {
	echo "evolve smoke: campaign reported no cumulative pass coverage" >&2
	cat "$SMOKE_DIR/evolve.log" >&2
	exit 1
}
grep -q '"generation":' "$EVOLVE_STATS/plot.jsonl" || {
	echo "evolve smoke: no per-generation snapshots in plot.jsonl" >&2
	cat "$EVOLVE_STATS/plot.jsonl" >&2
	exit 1
}
grep -q '"pass_coverage":' "$EVOLVE_STATS/plot.jsonl" || {
	echo "evolve smoke: no pass-coverage telemetry in plot.jsonl" >&2
	cat "$EVOLVE_STATS/plot.jsonl" >&2
	exit 1
}
grep -Eq '"(best|mean)_fitness":' "$EVOLVE_STATS/plot.jsonl" || {
	echo "evolve smoke: no fitness telemetry in plot.jsonl" >&2
	cat "$EVOLVE_STATS/plot.jsonl" >&2
	exit 1
}

echo "== check OK"
