#!/bin/sh
# Tier-1 gate, shell form of `make check`: vet, build, race-enabled
# tests, and a short native-fuzz smoke. Usage: scripts/check.sh
# [fuzztime], e.g. `scripts/check.sh 30s`.
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke ($FUZZTIME each)"
go test -fuzz=FuzzParse -fuzztime="$FUZZTIME" -run='^$' ./internal/minic/parser
go test -fuzz=FuzzSuiteRun -fuzztime="$FUZZTIME" -run='^$' .

# Telemetry smoke: a short sharded campaign with -stats must produce a
# plot.jsonl whose lines carry a nonzero execs/sec. The telemetry unit
# and determinism tests already ran under -race above; this checks the
# CLI-to-plot-file path end to end.
echo "== telemetry smoke (4 shards, 2000 execs)"
STATS_DIR="$(mktemp -d)"
trap 'rm -rf "$STATS_DIR"' EXIT
go run ./cmd/compdiff-fuzz -target tcpdump -execs 2000 -shards 4 -sync 500 \
	-stats "$STATS_DIR" >/dev/null
grep -q '"execs_per_sec":[0-9]*[1-9]' "$STATS_DIR/plot.jsonl" || {
	echo "telemetry smoke: no nonzero execs_per_sec in plot.jsonl" >&2
	cat "$STATS_DIR/plot.jsonl" >&2
	exit 1
}

echo "== check OK"
