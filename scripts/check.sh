#!/bin/sh
# Tier-1 gate, shell form of `make check`: vet, build, race-enabled
# tests, and a short native-fuzz smoke. Usage: scripts/check.sh
# [fuzztime], e.g. `scripts/check.sh 30s`.
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke ($FUZZTIME each)"
go test -fuzz=FuzzParse -fuzztime="$FUZZTIME" -run='^$' ./internal/minic/parser
go test -fuzz=FuzzSuiteRun -fuzztime="$FUZZTIME" -run='^$' .

echo "== check OK"
