#!/bin/sh
# Coverage gate, shell form of `make cover`: a per-package statement
# coverage table over the whole module, with hard floors on the triage
# layer — the reducer and bucket store are pure logic whose contract
# (fingerprint preservation, dedup) lives entirely in their tests, so
# their coverage eroding is an early sign the contract is eroding too.
set -eu

cd "$(dirname "$0")/.."

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "== go test -cover (per-package table)"
go test -count=1 -cover ./... >"$OUT" 2>&1 || { cat "$OUT" >&2; exit 1; }
awk '$1 == "ok" {
    cov = "-"
    for (i = 1; i <= NF; i++) if ($i ~ /%$/) cov = $i
    printf "%-34s %s\n", $2, cov
}' "$OUT"

# floor PKG PCT fails the gate when PKG's statement coverage is below
# PCT percent (or was not measured at all).
floor() {
	pct="$(awk -v p="$1" '$1 == "ok" && $2 == p {
	    for (i = 1; i <= NF; i++) if ($i ~ /%$/) { sub("%", "", $i); print $i }
	}' "$OUT")"
	if [ -z "$pct" ]; then
		echo "cover: no coverage recorded for $1" >&2
		exit 1
	fi
	if [ "$(awk -v a="$pct" -v b="$2" 'BEGIN { print (a >= b) ? 1 : 0 }')" != 1 ]; then
		echo "cover: $1 at ${pct}% is below the ${2}% floor" >&2
		exit 1
	fi
	echo "cover: $1 ${pct}% >= ${2}% floor"
}

# Raised from 85 when the compile-stage oracle landed: the new
# normalization, OfCompile, and compile-bucket code must stay above
# 85% on its own, which keeps the package at 90+.
floor compdiff/internal/triage 90
floor compdiff/internal/difffuzz 80
# The checkpoint layer's whole contract — atomic saves, torn-file
# detection, resume fidelity — is only observable through its tests.
floor compdiff/internal/checkpoint 85
# The supervisor is all failure paths: restart intensity, backoff,
# replay gaps, drain races. Untested lines here are untested outages.
floor compdiff/internal/supervisor 85
# The evolve engine is pure logic (fitness, selection, gated
# mutation); its determinism and validity contracts live entirely in
# its tests.
floor compdiff/internal/evolve 85

echo "== cover OK"
